"""Glue transformations (paper section 3.4).

A glue rule is a tree-to-tree rewrite over the IL.  Marion applies glue to
complete the IL-to-target mapping; we apply rules as a *fallback* during
selection — when no instruction pattern matches a node, the selector asks
the glue transformer for a rewrite and retries.  This preserves the paper's
"applied prior to code selection" semantics (the rewritten tree is what
selection consumes) while letting directly-matchable shapes, such as a
compare against zero, keep their best patterns.

Rule metavariables ``$n`` are sorted by the rule's operand list: a register
sort matches any expression whose type that register set can hold; an
immediate sort matches constants that fit the class.  Replacements may call
the builtins ``high``/``low``/``eval``; with constant arguments they fold
immediately, with symbolic arguments (global addresses) they produce
relocation halves resolved at layout time.
"""

from __future__ import annotations

from repro.backend.values import HighHalf, LowHalf, SymbolRef, immediate_fits
from repro.errors import MarionError
from repro.il.node import Node
from repro.il.ops import ILOp
from repro.machine.instruction import OperandDesc, OperandMode
from repro.machine.target import TargetMachine
from repro.maril import ast

_BINARY_OPS = {
    "+": ILOp.ADD,
    "-": ILOp.SUB,
    "*": ILOp.MUL,
    "/": ILOp.DIV,
    "%": ILOp.MOD,
    "&": ILOp.BAND,
    "|": ILOp.BOR,
    "^": ILOp.BXOR,
    "<<": ILOp.LSH,
    ">>": ILOp.RSH,
    "==": ILOp.EQ,
    "!=": ILOp.NE,
    "<": ILOp.LT,
    "<=": ILOp.LE,
    ">": ILOp.GT,
    ">=": ILOp.GE,
    "::": ILOp.CMP,
}

_UNARY_OPS = {"-": ILOp.NEG, "~": ILOp.BNOT}

#: Operators that produce int regardless of operand type.
_INT_RESULT_OPS = frozenset(
    {ILOp.EQ, ILOp.NE, ILOp.LT, ILOp.LE, ILOp.GT, ILOp.GE, ILOp.CMP}
)


class GlueTransformer:
    """Applies a target's glue rules to IL nodes."""

    def __init__(self, target: TargetMachine):
        self.target = target
        self.rules = target.glue_rules

    # -- entry points -------------------------------------------------------

    def rewrite_branch(self, node: Node) -> Node | None:
        """Try statement-level rules against a CJUMP; None if no rule fits."""
        for rule in self.rules:
            if not isinstance(rule.pattern, ast.CondGotoStmt):
                continue
            bindings = self._match_stmt(rule, rule.pattern, node)
            if bindings is not None:
                return self._build_stmt(rule, rule.replacement, bindings, node)
        return None

    def rewrite_value(self, node: Node) -> Node | None:
        """Try expression-level rules against a value node."""
        for rule in self.rules:
            if isinstance(rule.pattern, ast.Stmt):
                continue
            bindings = self._match_expr(rule, rule.pattern, node)
            if bindings is not None:
                return self._build_expr(rule, rule.replacement, bindings, node.type)
        return None

    # -- matching ----------------------------------------------------------

    def _match_stmt(self, rule, pattern: ast.CondGotoStmt, node: Node):
        if node.op is not ILOp.CJUMP:
            return None
        bindings: dict[int, object] = {}
        if not self._match(rule, pattern.condition, node.kids[0], bindings):
            return None
        if isinstance(pattern.target, ast.OperandRef):
            bindings[pattern.target.index] = ("label", node.value)
        return bindings

    def _match_expr(self, rule, pattern: ast.Expr, node: Node):
        bindings: dict[int, object] = {}
        if self._match(rule, pattern, node, bindings):
            return bindings
        return None

    def _match(self, rule, pattern: ast.Expr, node: Node, bindings) -> bool:
        if isinstance(pattern, ast.OperandRef):
            spec = self._operand_spec(rule, pattern.index)
            if not self._sort_matches(spec, node):
                return False
            existing = bindings.get(pattern.index)
            if existing is not None and existing[1] is not node:
                return False
            bindings[pattern.index] = ("node", node)
            return True
        if isinstance(pattern, ast.IntLit):
            return (
                node.op is ILOp.CNST
                and isinstance(node.value, int)
                and node.value == pattern.value
            )
        if isinstance(pattern, ast.Binary):
            il_op = _BINARY_OPS.get(pattern.op)
            if il_op is None or node.op is not il_op or len(node.kids) != 2:
                return False
            return self._match(rule, pattern.left, node.kids[0], bindings) and (
                self._match(rule, pattern.right, node.kids[1], bindings)
            )
        if isinstance(pattern, ast.Unary):
            il_op = _UNARY_OPS.get(pattern.op)
            if il_op is None or node.op is not il_op:
                return False
            return self._match(rule, pattern.operand, node.kids[0], bindings)
        if isinstance(pattern, ast.BuiltinCall):
            if pattern.name in ("int", "float", "double"):
                if node.op is not ILOp.CVT or node.type != pattern.name:
                    return False
                return self._match(rule, pattern.args[0], node.kids[0], bindings)
            return False
        if isinstance(pattern, ast.MemRef):
            if node.op is not ILOp.INDIR:
                return False
            return self._match(rule, pattern.address, node.kids[0], bindings)
        return False

    def _operand_spec(self, rule, index: int) -> ast.OperandSpec:
        try:
            return rule.operands[index - 1]
        except IndexError:
            raise MarionError(
                f"glue rule references ${index} but lists only "
                f"{len(rule.operands)} operands"
            ) from None

    def _sort_matches(self, spec: ast.OperandSpec, node: Node) -> bool:
        if isinstance(spec, ast.RegOperand):
            rset = self.target.registers.set(spec.set_name)
            return node.type in rset.types
        # immediate sort: constants that fit the class
        assert isinstance(spec, ast.ImmOperand)
        desc = self._imm_desc(spec.def_name)
        return node.op is ILOp.CNST and immediate_fits(node.value, desc)

    def _imm_desc(self, def_name: str) -> OperandDesc:
        for decl in self.target.description.declarations(ast.DefDecl):
            if decl.name == def_name:
                return OperandDesc(
                    OperandMode.IMM,
                    def_name=decl.name,
                    lo=decl.lo,
                    hi=decl.hi,
                    absolute="abs" in decl.flags,
                )
        raise MarionError(f"glue rule names unknown immediate class #{def_name}")

    # -- replacement construction ---------------------------------------------

    def _build_stmt(self, rule, replacement: ast.Stmt, bindings, original: Node) -> Node:
        if not isinstance(replacement, ast.CondGotoStmt):
            raise MarionError("statement glue replacement must be a branch")
        condition = self._build_expr(rule, replacement.condition, bindings, "int")
        if isinstance(replacement.target, ast.OperandRef):
            bound = bindings.get(replacement.target.index)
            label = bound[1] if bound else original.value
        else:
            label = original.value
        return Node(ILOp.CJUMP, None, (condition,), label)

    def _build_expr(self, rule, expr: ast.Expr, bindings, context_type: str | None) -> Node:
        if isinstance(expr, ast.OperandRef):
            bound = bindings.get(expr.index)
            if bound is None or bound[0] != "node":
                raise MarionError(f"glue replacement uses unbound ${expr.index}")
            return bound[1]
        if isinstance(expr, ast.IntLit):
            return Node(ILOp.CNST, "int", (), expr.value)
        if isinstance(expr, ast.FloatLit):
            return Node(ILOp.CNST, "double", (), expr.value)
        if isinstance(expr, ast.Binary):
            left = self._build_expr(rule, expr.left, bindings, context_type)
            right = self._build_expr(rule, expr.right, bindings, context_type)
            il_op = _BINARY_OPS[expr.op]
            if il_op in _INT_RESULT_OPS:
                node_type = "int"
            else:
                node_type = left.type or right.type or context_type
            return Node(il_op, node_type, (left, right))
        if isinstance(expr, ast.Unary):
            kid = self._build_expr(rule, expr.operand, bindings, context_type)
            return Node(_UNARY_OPS[expr.op], kid.type, (kid,))
        if isinstance(expr, ast.BuiltinCall):
            return self._build_builtin(rule, expr, bindings, context_type)
        if isinstance(expr, ast.MemRef):
            address = self._build_expr(rule, expr.address, bindings, "int")
            return Node(ILOp.INDIR, context_type, (address,))
        raise MarionError(f"unsupported glue replacement expression {expr}")

    def _build_builtin(self, rule, expr: ast.BuiltinCall, bindings, context_type):
        name = expr.name
        arg = self._build_expr(rule, expr.args[0], bindings, context_type)
        if name in ("int", "float", "double"):
            return Node(ILOp.CVT, name, (arg,))
        if name == "eval":
            if arg.op is not ILOp.CNST:
                raise MarionError("eval() in glue requires a constant argument")
            return arg
        if name in ("high", "low"):
            if arg.op is not ILOp.CNST:
                raise MarionError(f"{name}() in glue requires a constant argument")
            value = arg.value
            if isinstance(value, int):
                folded = (value >> 16) & 0xFFFF if name == "high" else value & 0xFFFF
                return Node(ILOp.CNST, "int", (), folded)
            if isinstance(value, SymbolRef):
                half = HighHalf(value) if name == "high" else LowHalf(value)
                return Node(ILOp.CNST, "int", (), half)
            raise MarionError(f"{name}() cannot take {value!r}")
        raise MarionError(f"unsupported builtin {name} in glue replacement")
