"""Symbolic immediate values.

Frame offsets are unknown until frame layout (spill slots are added by the
register allocator) and global addresses are unknown until the program is
laid out, so immediate operands may carry these placeholder values.  The
assembler/linker resolves them to integers; range assumptions are verified
then (see :mod:`repro.program`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.il.node import FrameSlot

#: A symbolic frame offset is assumed to fit specs at least this wide.
FRAME_OFFSET_REACH = 8191


@dataclass(frozen=True)
class SlotOffset:
    """fp-relative offset of a frame slot; resolved at frame layout."""

    slot: FrameSlot
    addend: int = 0

    def __str__(self) -> str:
        extra = f"+{self.addend}" if self.addend else ""
        return f"{self.slot}{extra}"


@dataclass(frozen=True)
class SymbolRef:
    """Address of a global symbol; resolved at program layout."""

    name: str
    addend: int = 0

    def __str__(self) -> str:
        extra = f"+{self.addend}" if self.addend else ""
        return f"{self.name}{extra}"


@dataclass(frozen=True)
class GpOffset:
    """gp-relative displacement of a global symbol; resolved at layout.

    When the CWVM declares a global data pointer (``%gp``), globals are
    addressed as ``gp + offset`` in one instruction instead of a
    high/low-half pair — the classic MIPS small-data optimisation."""

    name: str
    addend: int = 0

    def __str__(self) -> str:
        extra = f"+{self.addend}" if self.addend else ""
        return f"%gprel({self.name}{extra})"


@dataclass(frozen=True)
class HighHalf:
    """``high(x)`` of a yet-unresolved value (upper 16 bits)."""

    base: object  # SymbolRef or int

    def __str__(self) -> str:
        return f"%hi({self.base})"


@dataclass(frozen=True)
class LowHalf:
    """``low(x)`` of a yet-unresolved value (lower 16 bits, unsigned)."""

    base: object

    def __str__(self) -> str:
        return f"%lo({self.base})"


def immediate_fits(value: object, spec) -> bool:
    """Can ``value`` be carried by immediate operand ``spec``?

    ``spec`` is an :class:`~repro.machine.instruction.OperandDesc` of mode
    IMM.  Integers are range-checked; symbolic values use conservative
    assumptions that the assembler re-verifies.
    """
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return spec.accepts_int(value)
    if isinstance(value, SlotOffset):
        return spec.lo <= -FRAME_OFFSET_REACH and spec.hi >= FRAME_OFFSET_REACH
    if isinstance(value, GpOffset):
        # the linker verifies the resolved displacement; the data segment
        # is kept within the 64 KB window around gp
        return spec.lo <= -32768 and spec.hi >= 32767
    if isinstance(value, SymbolRef):
        return spec.absolute
    if isinstance(value, (HighHalf, LowHalf)):
        if isinstance(value.base, int):
            return True  # folded to a 16-bit value at emission
        return spec.absolute or (spec.lo <= 0 and spec.hi >= 65535)
    return False


def fold_halves(value: object) -> object:
    """Fold ``HighHalf``/``LowHalf`` of integer bases into plain ints."""
    if isinstance(value, HighHalf) and isinstance(value.base, int):
        return (value.base >> 16) & 0xFFFF
    if isinstance(value, LowHalf) and isinstance(value.base, int):
        return value.base & 0xFFFF
    return value
