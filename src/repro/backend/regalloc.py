"""Chaitin/Briggs graph-coloring global register allocation (section 2.2).

The allocator loops: liveness -> interference graph -> optimistic coloring
-> spill-code insertion, until every pseudo-register is colored.  Register
pairs work through the unit model: a double register's two units must all
be free of the neighbors' units.

Strategies parameterise the allocator with spill-cost overrides: RASE feeds
in schedule-estimate-weighted costs, Postpass/IPS use the classic
``uses x 10^depth`` Chaitin costs collected during graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.insts import MachineInstr, Reg
from repro.backend.interference import InterferenceGraph, build_interference
from repro.backend.liveness import compute_liveness
from repro.backend.memaccess import TargetMemoryAccess
from repro.backend.mfunc import MFunction
from repro.backend.values import SlotOffset
from repro.errors import AllocationError
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg
from repro.machine.target import TargetMachine

_MAX_ITERATIONS = 16


@dataclass
class AllocationResult:
    """What the allocator hands back to the strategy."""

    assignment: dict[int, PhysReg] = field(default_factory=dict)
    used_callee_save: list[PhysReg] = field(default_factory=list)
    spilled_pseudos: int = 0
    iterations: int = 0


class GraphColoringAllocator:
    """Chaitin/Briggs coloring over the unit-aliasing register model."""

    def __init__(
        self,
        target: TargetMachine,
        cost_overrides: dict[int, float] | None = None,
    ):
        self.target = target
        self.cost_overrides = cost_overrides or {}
        self.memory = TargetMemoryAccess(target)

    # -- public ---------------------------------------------------------------

    def allocate(self, fn: MFunction) -> AllocationResult:
        """Color every pseudo-register, spilling and retrying as needed;
        rewrites the function to physical registers and finishes the frame
        (prologue/epilogue, ``*func`` move expansion)."""
        result = AllocationResult()
        self._spill_temp_ids: set[int] = set()
        already_spilled: set[int] = set()
        for iteration in range(1, _MAX_ITERATIONS + 1):
            result.iterations = iteration
            liveness = compute_liveness(fn, self.target.registers)
            graph = build_interference(fn, liveness, self.target.registers)
            assignment, spilled = self._color(graph, liveness, already_spilled)
            if not spilled:
                result.assignment = assignment
                self._rewrite(fn, assignment)
                result.used_callee_save = self._callee_saves(assignment)
                return result
            result.spilled_pseudos += len(spilled)
            already_spilled.update(p.id for p in spilled)
            self._insert_spill_code(fn, spilled)
        raise AllocationError(
            f"register allocation did not converge after {_MAX_ITERATIONS} "
            f"iterations in {fn.name}"
        )

    # -- coloring ---------------------------------------------------------------

    def _candidates(self, pseudo: PseudoReg, live_across_call: bool) -> list[PhysReg]:
        set_name = pseudo.set_name or self.target.cwvm.general.get(pseudo.type)
        if set_name is None:
            raise AllocationError(
                f"no general register set for type {pseudo.type!r}"
            )
        callee = set(self.target.cwvm.callee_save)
        candidates = [
            r for r in self.target.cwvm.allocable if r.set_name == set_name
        ]
        # cheaper registers first: caller-save for short ranges, callee-save
        # for ranges living across calls
        if live_across_call:
            candidates.sort(key=lambda r: (r not in callee, r.index))
        else:
            candidates.sort(key=lambda r: (r in callee, r.index))
        return candidates

    def _color(
        self,
        graph: InterferenceGraph,
        liveness,
        already_spilled: set[int],
    ):
        registers = self.target.registers
        work = dict(graph.adjacency)  # id -> neighbor set (mutated)
        degrees = {pid: len(neigh) for pid, neigh in work.items()}
        stack: list[int] = []
        remaining = set(work)

        def k_of(pid: int) -> int:
            pseudo = graph.pseudos[pid]
            wanted = pseudo.set_name or self.target.cwvm.general.get(pseudo.type)
            return max(
                1,
                len(
                    [
                        r
                        for r in self.target.cwvm.allocable
                        if r.set_name == wanted
                    ]
                ),
            )

        def cost_of(pid: int) -> float:
            # spill temporaries must not be re-spilled: infinite cost
            if pid in self._spill_temp_ids:
                return float("inf")
            return self.cost_overrides.get(pid, graph.spill_cost[pid])

        while remaining:
            simplifiable = [pid for pid in remaining if degrees[pid] < k_of(pid)]
            if simplifiable:
                pid = min(simplifiable, key=lambda p: (degrees[p], p))
            else:
                # optimistic push of the cheapest spill candidate
                pid = min(
                    remaining,
                    key=lambda p: (cost_of(p) / max(1, degrees[p]), p),
                )
            stack.append(pid)
            remaining.discard(pid)
            for neighbor in work[pid]:
                if neighbor in remaining:
                    degrees[neighbor] -= 1

        assignment: dict[int, PhysReg] = {}
        spilled: list[PseudoReg] = []
        while stack:
            pid = stack.pop()
            pseudo = graph.pseudos[pid]
            forbidden = set(graph.unit_conflicts[pid])
            for neighbor in graph.adjacency[pid]:
                reg = assignment.get(neighbor)
                if reg is not None:
                    forbidden.update(
                        ("u",) + unit for unit in registers.units_of(reg)
                    )
            live_across = pid in liveness.live_across_call
            chosen = None
            # prefer the move partner's register when it is legal
            for a, b in graph.move_pairs:
                partner = b if a == pid else (a if b == pid else None)
                if partner is None:
                    continue
                reg = assignment.get(partner)
                if reg is None:
                    continue
                wanted = pseudo.set_name or self.target.cwvm.general.get(
                    pseudo.type
                )
                if reg.set_name != wanted:
                    continue
                if reg not in self.target.cwvm.allocable:
                    continue
                units = {("u",) + unit for unit in registers.units_of(reg)}
                if not (units & forbidden):
                    chosen = reg
                    break
            if chosen is None:
                for reg in self._candidates(pseudo, live_across):
                    units = {("u",) + unit for unit in registers.units_of(reg)}
                    if not (units & forbidden):
                        chosen = reg
                        break
            if chosen is None:
                if pid in self._spill_temp_ids:
                    # a spill temporary must get a register; evict the
                    # cheapest already-colored non-temporary neighbor and
                    # spill that one instead
                    evicted = self._evict_neighbor(graph, pid, assignment)
                    if evicted is None:
                        raise AllocationError(
                            f"spill temporary {pseudo} is itself uncolorable"
                        )
                    spilled.append(graph.pseudos[evicted])
                    stack.append(pid)  # retry the temp with the freed units
                    continue
                spilled.append(pseudo)
            else:
                assignment[pid] = chosen
        return assignment, spilled

    def _evict_neighbor(
        self, graph: InterferenceGraph, pid: int, assignment: dict[int, PhysReg]
    ) -> int | None:
        candidates = [
            n
            for n in graph.adjacency[pid]
            if n in assignment and n not in self._spill_temp_ids
        ]
        if not candidates:
            return None
        victim = min(candidates, key=lambda n: graph.spill_cost[n])
        del assignment[victim]
        return victim

    # -- rewriting ---------------------------------------------------------------

    def _rewrite(self, fn: MFunction, assignment: dict[int, PhysReg]) -> None:
        for block in fn.blocks:
            for instr in block.instrs:
                for position, operand in enumerate(instr.operands):
                    if isinstance(operand, Reg) and isinstance(
                        operand.reg, PseudoReg
                    ):
                        reg = assignment.get(operand.reg.id)
                        if reg is None:
                            raise AllocationError(
                                f"pseudo {operand.reg} has no register in "
                                f"{fn.name}"
                            )
                        instr.rewrite_reg(position, reg)

    def _callee_saves(self, assignment: dict[int, PhysReg]) -> list[PhysReg]:
        callee = []
        callee_units: set = set()
        registers = self.target.registers
        callee_set = set(self.target.cwvm.callee_save)
        callee_set_units = {
            unit for reg in callee_set for unit in registers.units_of(reg)
        }
        for reg in assignment.values():
            units = set(registers.units_of(reg))
            if units & callee_set_units and reg not in callee:
                callee.append(reg)
                callee_units |= units
        return callee

    # -- spill code ----------------------------------------------------------------

    def _insert_spill_code(self, fn: MFunction, spilled: list[PseudoReg]) -> None:
        fp = self.target.cwvm.fp
        slots = {}
        for pseudo in spilled:
            size = 8 if pseudo.type == "double" else 4
            slots[pseudo.id] = fn.new_slot(size, size, name=f"spill.{pseudo}")
        spilled_ids = set(slots)
        for block in fn.blocks:
            rewritten: list[MachineInstr] = []
            for instr in block.instrs:
                loads: list[MachineInstr] = []
                stores: list[MachineInstr] = []
                replacement: dict[int, PseudoReg] = {}
                loaded: set[int] = set()
                stored: set[int] = set()
                for position, operand in enumerate(instr.operands):
                    if not (
                        isinstance(operand, Reg)
                        and isinstance(operand.reg, PseudoReg)
                        and operand.reg.id in spilled_ids
                    ):
                        continue
                    pseudo = operand.reg
                    temp = replacement.get(pseudo.id)
                    if temp is None:
                        temp = PseudoReg(pseudo.type, name=f"sp{pseudo.id}")
                        replacement[pseudo.id] = temp
                        self._spill_temp_ids.add(temp.id)
                    offset = SlotOffset(slots[pseudo.id])
                    if position in instr.desc.use_operands and pseudo.id not in loaded:
                        loaded.add(pseudo.id)
                        loads.append(
                            self.memory.load(pseudo.type, temp, fp, offset)
                        )
                    if position in instr.desc.def_operands and pseudo.id not in stored:
                        stored.add(pseudo.id)
                        stores.append(
                            self.memory.store(pseudo.type, temp, fp, offset)
                        )
                    instr.rewrite_reg(position, temp)
                rewritten.extend(loads)
                rewritten.append(instr)
                rewritten.extend(stores)
            block.instrs = rewritten
