"""List scheduling (paper sections 4.2-4.6).

The scheduler keeps a ready list of DAG nodes whose predecessors have been
scheduled; each cycle it issues, in priority order (maximum distance to a
leaf), every ready instruction that

* has satisfied its dependence-edge delays,
* causes no structural hazard against the composite resource vector of all
  currently executing instructions (section 4.3),
* can be *packed* with the sub-operations already issued this cycle: the
  intersection of packing classes must stay non-empty (section 4.5), and
* respects Rule 1 for explicitly advanced pipelines: while the scheduler is
  scheduling across a temporal edge based on clock k, an instruction that
  affects k may not issue before the pending destination, but may be packed
  with it on the same cycle (section 4.6).

The block's control instruction issues last and its delay slots are filled
with nops (section 4.4).  An optional register-use limit implements the
IPS strategy's pressure-bounded first pass.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.backend.codedag import CodeDag, DagNode, build_code_dag
from repro.backend.insts import MachineInstr, make_instr
from repro.machine.resources import commit, conflicts
from repro.errors import SchedulingError
from repro.il.node import PseudoReg
from repro.machine.target import TargetMachine
from repro.obs import stalls
from repro.utils import timing


@dataclass
class ScheduleResult:
    """Outcome of scheduling one basic block."""

    instrs: list[MachineInstr]  # final order, including delay-slot nops
    cost: int  # estimated block execution cycles
    issue_cycle: dict[int, int] = field(default_factory=dict)  # instr.id -> cycle
    #: every nop or issue delay this schedule commits, as (cycle, reason)
    #: events in cycle order — idle cycles classified by the scheduler,
    #: plus one ``branch_delay`` event per inserted delay-slot nop
    stall_events: list[tuple[int, str]] = field(default_factory=list)
    #: committed nop slots: idle cycles in the schedule plus inserted
    #: delay-slot nops.  Always equals ``sum(self.stalls.values())`` —
    #: both sides are derived independently and tested for conservation.
    nop_slots: int = 0

    def cycle_of(self, instr: MachineInstr) -> int:
        return self.issue_cycle[instr.id]

    @property
    def stalls(self) -> dict[str, int]:
        """Stall-reason histogram (reason code -> slot count)."""
        out: dict[str, int] = {}
        for _cycle, reason in self.stall_events:
            out[reason] = out.get(reason, 0) + 1
        return out


class ListScheduler:
    """A target-parameterised list scheduler."""

    def __init__(
        self,
        target: TargetMachine,
        heuristic: str = "maxdist",
        register_limit: int | None = None,
        include_anti: bool = True,
        fill_delay_slots_with_nops: bool = True,
    ):
        if heuristic not in ("maxdist", "fifo"):
            raise ValueError(f"unknown scheduling heuristic {heuristic!r}")
        self.target = target
        self.heuristic = heuristic
        self.register_limit = register_limit
        self.include_anti = include_anti
        self.fill_nops = fill_delay_slots_with_nops

    # -- public API -----------------------------------------------------------

    def schedule_block(self, instrs: list[MachineInstr]) -> ScheduleResult:
        """List-schedule one basic block's instructions."""
        if not instrs:
            return ScheduleResult([], 0)
        if timing.ENABLED:
            start = time.perf_counter()
            dag = build_code_dag(
                instrs, self.target, include_anti=self.include_anti
            )
            result = _BlockScheduler(self, dag).run()
            timing.add_seconds(
                "scheduler.schedule_block", time.perf_counter() - start
            )
            timing.add("scheduler.blocks")
            timing.add("scheduler.instructions", len(instrs))
            return result
        dag = build_code_dag(instrs, self.target, include_anti=self.include_anti)
        return _BlockScheduler(self, dag).run()


class _BlockScheduler:
    def __init__(self, config: ListScheduler, dag: CodeDag):
        self.config = config
        self.target = config.target
        self.dag = dag
        self.nodes = dag.nodes
        # a block normally has one control instruction; conditional blocks
        # carry a CJUMP followed by the explicit false-path JUMP, which must
        # issue last, in thread order
        self.controls = [n for n in self.nodes if n.instr.is_branch_or_jump]
        self.unscheduled = len(self.nodes)
        self.issue_cycle: dict[DagNode, int] = {}
        self.earliest: dict[DagNode, int] = {}
        self.pred_count = {n: len(n.preds) for n in self.nodes}
        # the ready list is a priority heap keyed on the scheduling
        # heuristic (maxdist: highest priority first, thread order as the
        # tie-break; fifo: thread order).  Issued nodes are deleted lazily:
        # temporal groups issue nodes without going through the heap, so
        # stale entries are skipped on read and compacted in _issue.
        if config.heuristic == "maxdist":
            self._heap_key = lambda n: (-n.priority, n.index, n)
        else:
            self._heap_key = lambda n: (n.index, n)
        self.ready_heap: list[tuple] = [
            self._heap_key(n) for n in self.nodes if self.pred_count[n] == 0
        ]
        heapq.heapify(self.ready_heap)
        self._stale = 0
        for entry in self.ready_heap:
            self.earliest[entry[-1]] = 0
        self.resource_use: dict[int, int] = {}  # cycle -> mask
        self.cycle_classes: frozenset | None = None  # intersection this cycle
        self.pending_temporal: dict[str, set[DagNode]] = {}
        self.order: list[DagNode] = []
        #: idle cycles, classified as they happen: (cycle, reason code)
        self.stall_events: list[tuple[int, str]] = []
        #: node -> mnemonic of the producer whose edge set its earliest
        self.earliest_cause: dict[DagNode, str] = {}
        self._setup_pressure()

    # -- register-pressure bookkeeping (IPS limit) ------------------------------

    def _setup_pressure(self) -> None:
        self.remaining_uses: dict[int, int] = {}
        self.live: set[int] = set()
        if self.config.register_limit is None:
            return
        for node in self.nodes:
            for reg in node.instr.uses():
                if isinstance(reg, PseudoReg) and not reg.is_global:
                    self.remaining_uses[reg.id] = (
                        self.remaining_uses.get(reg.id, 0) + 1
                    )

    def _pressure_delta(self, node: DagNode) -> int:
        delta = 0
        freed: set[int] = set()
        for reg in node.instr.uses():
            if isinstance(reg, PseudoReg) and not reg.is_global:
                if (
                    reg.id in self.live
                    and self.remaining_uses.get(reg.id, 0) <= 1
                    and reg.id not in freed
                ):
                    delta -= 1
                    freed.add(reg.id)
        for reg in node.instr.defs():
            if isinstance(reg, PseudoReg) and not reg.is_global:
                if reg.id not in self.live or reg.id in freed:
                    delta += 1
        return delta

    def _apply_pressure(self, node: DagNode) -> None:
        if self.config.register_limit is None:
            return
        for reg in node.instr.uses():
            if isinstance(reg, PseudoReg) and not reg.is_global:
                count = self.remaining_uses.get(reg.id, 0) - 1
                self.remaining_uses[reg.id] = count
                if count <= 0:
                    self.live.discard(reg.id)
        for reg in node.instr.defs():
            if isinstance(reg, PseudoReg) and not reg.is_global:
                if self.remaining_uses.get(reg.id, 0) > 0:
                    self.live.add(reg.id)

    # -- main loop ----------------------------------------------------------

    def run(self) -> ScheduleResult:
        cycle = 0
        guard = 0
        limit = 64 + sum(
            n.instr.desc.latency + len(n.instr.desc.resource_vector)
            for n in self.nodes
        ) + 4 * len(self.nodes)
        while self.unscheduled > 0:
            self.cycle_classes = None
            before = self.unscheduled
            self._issue_all_possible(cycle)
            if self.unscheduled == before:
                # an idle cycle: the hardware (or a nop) will fill it —
                # classify why before moving the clock
                self.stall_events.append((cycle, self._classify_stall(cycle)))
            cycle += 1
            guard += 1
            if guard > limit:
                raise SchedulingError(
                    "scheduler made no progress (possible temporal deadlock); "
                    f"{self.unscheduled} instructions remain"
                )
        return self._finish()

    def _issue_all_possible(self, cycle: int) -> None:
        issued_something = True
        while issued_something:
            issued_something = False
            if self._try_issue_temporal_groups(cycle):
                issued_something = True
                continue
            candidates = self._candidates(cycle)
            for node in candidates:
                if self._can_issue(node, cycle):
                    self._issue(node, cycle)
                    issued_something = True
                    break  # re-evaluate candidates after each issue

    def _try_issue_temporal_groups(self, cycle: int) -> bool:
        """Issue a whole temporal group atomically (section 4.6).

        All pending destinations of temporal edges on one clock form a
        temporal group and are "pre-packed": they must advance together,
        because each affects the clock the others are waiting on.  When
        more than one destination is pending, individual issue is blocked
        by Rule 1, so the group is placed as a single unit here.
        """
        for clock, pending in self.pending_temporal.items():
            group = [n for n in pending if n not in self.issue_cycle]
            if len(group) < 2:
                continue  # single destinations issue through the normal path
            if any(self.pred_count[n] != 0 or self.earliest.get(n, 0) > cycle
                   for n in group):
                continue
            if not self._group_fits(group, cycle):
                continue
            for node in sorted(group, key=lambda n: n.index):
                self._issue(node, cycle)
            return True
        return False

    def _group_fits(self, group: list[DagNode], cycle: int) -> bool:
        usage = dict(self.resource_use)
        classes = self.cycle_classes
        for node in group:
            for offset, need in enumerate(node.instr.desc.resource_vector):
                if conflicts(usage.get(cycle + offset, 0), need):
                    return False
                usage[cycle + offset] = commit(usage.get(cycle + offset, 0), need)
            node_classes = node.instr.desc.classes
            if node_classes:
                classes = node_classes if classes is None else classes & node_classes
                if not classes:
                    return False
        return True

    def _candidates(self, cycle: int) -> list[DagNode]:
        issue_cycle = self.issue_cycle
        earliest = self.earliest
        # a sorted walk of the heap yields heuristic order directly (the
        # keys are precomputed tuples); issued nodes are skipped lazily
        ready = [
            entry[-1]
            for entry in sorted(self.ready_heap)
            if entry[-1] not in issue_cycle and earliest[entry[-1]] <= cycle
        ]
        pending_controls = [
            n for n in self.controls if n not in issue_cycle
        ]
        if pending_controls:
            # control instructions end the block: hold them back until only
            # control remains, then release them one at a time in thread
            # order
            if self.unscheduled > len(pending_controls):
                ready = [n for n in ready if not n.instr.is_branch_or_jump]
            else:
                first = pending_controls[0]
                ready = [n for n in ready if n is first]
        limit = self.config.register_limit
        if limit is not None and len(self.live) >= limit:
            relaxed = [n for n in ready if self._pressure_delta(n) <= 0]
            if relaxed:
                ready = relaxed
        return ready

    def _can_issue(self, node: DagNode, cycle: int) -> bool:
        resource_use = self.resource_use
        masks = node.instr.desc.vector_fastpath()
        if masks is not None:
            for offset, mask in enumerate(masks):
                if mask and resource_use.get(cycle + offset, 0) & mask:
                    return False
        else:
            vector = node.instr.desc.resource_vector
            for offset, need in enumerate(vector):
                if conflicts(resource_use.get(cycle + offset, 0), need):
                    return False
        classes = node.instr.desc.classes
        if classes and self.cycle_classes is not None:
            if not (classes & self.cycle_classes):
                return False
        # Rule 1: an instruction affecting clock k may not be scheduled
        # before a pending temporal destination on k (but may pack with it,
        # i.e. the destination has already issued this very cycle).
        clock = node.instr.desc.affects_clock
        if clock is not None:
            pending = self.pending_temporal.get(clock, set())
            if pending - {node}:
                return False
        return True

    def _issue(self, node: DagNode, cycle: int) -> None:
        self.issue_cycle[node] = cycle
        self.unscheduled -= 1
        self._stale += 1
        if self._stale * 2 > len(self.ready_heap):
            issue_cycle = self.issue_cycle
            self.ready_heap = [
                entry
                for entry in self.ready_heap
                if entry[-1] not in issue_cycle
            ]
            heapq.heapify(self.ready_heap)
            self._stale = 0
        self.order.append(node)
        resource_use = self.resource_use
        masks = node.instr.desc.vector_fastpath()
        if masks is not None:
            for offset, mask in enumerate(masks):
                at = cycle + offset
                resource_use[at] = resource_use.get(at, 0) | mask
        else:
            vector = node.instr.desc.resource_vector
            for offset, need in enumerate(vector):
                resource_use[cycle + offset] = commit(
                    resource_use.get(cycle + offset, 0), need
                )
        classes = node.instr.desc.classes
        if classes:
            self.cycle_classes = (
                classes
                if self.cycle_classes is None
                else self.cycle_classes & classes
            )
        self._apply_pressure(node)
        # release successors
        for edge in node.succs:
            dst = edge.dst
            self.pred_count[dst] -= 1
            when = cycle + edge.latency
            previous = self.earliest.get(dst)
            if previous is None or when > previous:
                self.earliest[dst] = when
                if edge.latency > 0:
                    # remember who the successor is now waiting on, so an
                    # idle cycle can name its producer (latency(mnemonic))
                    self.earliest_cause[dst] = node.instr.desc.mnemonic
            if self.pred_count[dst] == 0:
                heapq.heappush(self.ready_heap, self._heap_key(dst))
            if edge.is_temporal and dst not in self.issue_cycle:
                self.pending_temporal.setdefault(edge.clock, set()).add(dst)
        # this node is no longer pending anywhere
        for pending in self.pending_temporal.values():
            pending.discard(node)

    # -- stall attribution --------------------------------------------------

    def _classify_stall(self, cycle: int) -> str:
        """Why did this cycle pass with nothing issued?

        Runs only on idle cycles, so it can afford to re-derive the
        scheduler's view: ready-but-blocked instructions name the hazard
        that blocked them; otherwise the wait is a dependence latency
        (named after the producer) or a genuinely empty ready list.
        """
        issue_cycle = self.issue_cycle
        ready = [
            n
            for n in self.nodes
            if n not in issue_cycle and self.pred_count[n] == 0
        ]
        if not ready:
            return stalls.EMPTY_READY_LIST
        runnable = [n for n in ready if self.earliest.get(n, 0) <= cycle]
        # mirror _candidates' control holdback: a control waiting for the
        # rest of the block is not the cause — the instructions it waits
        # on are
        pending_controls = [n for n in self.controls if n not in issue_cycle]
        if pending_controls and self.unscheduled > len(pending_controls):
            runnable = [n for n in runnable if not n.instr.is_branch_or_jump]
        elif pending_controls:
            first = pending_controls[0]
            runnable = [
                n
                for n in runnable
                if not n.instr.is_branch_or_jump or n is first
            ]
        if runnable:
            node = min(runnable, key=lambda n: n.index)
            return self._blocked_reason(node, cycle)
        waiting = [n for n in ready if self.earliest.get(n, 0) > cycle]
        if waiting:
            node = min(waiting, key=lambda n: (self.earliest[n], n.index))
            cause = self.earliest_cause.get(node)
            return stalls.latency(cause) if cause else stalls.LATENCY
        return stalls.EMPTY_READY_LIST

    def _blocked_reason(self, node: DagNode, cycle: int) -> str:
        """Mirror :meth:`_can_issue` and report the first failing check."""
        resource_use = self.resource_use
        for offset, need in enumerate(node.instr.desc.resource_vector):
            usage = resource_use.get(cycle + offset, 0)
            if conflicts(usage, need):
                names = self.target.resources.conflict_names(usage, need)
                return stalls.resource_conflict(names[0] if names else "?")
        classes = node.instr.desc.classes
        if classes and self.cycle_classes is not None:
            if not (classes & self.cycle_classes):
                return stalls.PACKING_CONFLICT
        clock = node.instr.desc.affects_clock
        if clock is not None:
            if self.pending_temporal.get(clock, set()) - {node}:
                return stalls.TEMPORAL_RULE1
        return stalls.EMPTY_READY_LIST

    def _ordered_for_emission(self) -> list[DagNode]:
        """Emission order: by cycle, and *within* a cycle in dependence
        order.  Packed sub-operations of an explicitly advanced pipeline
        carry 0-latency anti edges (a stage must read its input latch before
        the co-issued earlier stage advances it); sequential execution of
        the packed long instruction is only faithful if those edges are
        respected in the emitted order."""
        by_cycle: dict[int, list[DagNode]] = {}
        for node in self.order:
            by_cycle.setdefault(self.issue_cycle[node], []).append(node)
        out: list[DagNode] = []
        for cycle in sorted(by_cycle):
            group = by_cycle[cycle]
            if len(group) == 1:
                out.extend(group)
                continue
            members = set(group)
            pending = {
                n: sum(1 for e in n.preds if e.src in members) for n in group
            }
            emitted: list[DagNode] = []
            ready = [n for n in group if pending[n] == 0]
            while ready:
                ready.sort(key=lambda n: n.index)
                node = ready.pop(0)
                emitted.append(node)
                for edge in node.succs:
                    if edge.dst in members:
                        pending[edge.dst] -= 1
                        if pending[edge.dst] == 0:
                            ready.append(edge.dst)
            if len(emitted) != len(group):  # cycle among packed ops: keep input order
                emitted = sorted(group, key=lambda n: n.index)
            out.extend(emitted)
        return out

    def _finish(self) -> ScheduleResult:
        instrs: list[MachineInstr] = []
        issue_map: dict[int, int] = {}
        last_cycle = 0
        for node in self._ordered_for_emission():
            instrs.append(node.instr)
            cycle = self.issue_cycle[node]
            issue_map[node.instr.id] = cycle
            last_cycle = max(last_cycle, cycle)
        cost = last_cycle + 1
        events = list(self.stall_events)
        nops_inserted = 0
        for control in self.controls:
            branch_cycle = self.issue_cycle[control]
            slots = abs(control.instr.desc.slots)
            if self.config.fill_nops:
                position = instrs.index(control.instr) + 1
                for slot in range(slots):
                    nop = make_instr(self.target.nop, [])
                    nop.comment = "delay slot"
                    instrs.insert(position + slot, nop)
                    issue_map[nop.id] = branch_cycle + 1 + slot
                    events.append((branch_cycle + 1 + slot, stalls.BRANCH_DELAY))
                    nops_inserted += 1
            cost = max(cost, branch_cycle + 1 + slots)
        events.sort(key=lambda event: event[0])
        # conservation: nop slots are derived from the issue map, not from
        # the event list — idle cycles up to the last issue, plus the nops
        idle = (last_cycle + 1) - len(set(self.issue_cycle.values()))
        return ScheduleResult(
            instrs,
            cost,
            issue_map,
            stall_events=events,
            nop_slots=idle + nops_inserted,
        )
