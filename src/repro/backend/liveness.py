"""Dataflow liveness over machine functions.

Entities are pseudo-registers (keyed by id) and physical register *units*
(keyed by (file, unit)), so aliasing register pairs are handled uniformly:
a double register is live exactly when either of its units is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.mfunc import MBlock, MFunction
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg, RegisterModel


def entity_keys(reg, registers: RegisterModel) -> tuple:
    """Liveness keys for a register operand."""
    if isinstance(reg, PseudoReg):
        return (("p", reg.id),)
    assert isinstance(reg, PhysReg)
    return tuple(("u",) + unit for unit in registers.units_of(reg))


@dataclass
class LivenessInfo:
    """Per-block live-in/out sets plus per-function call-crossing info."""

    live_in: dict[str, set] = field(default_factory=dict)  # block label -> keys
    live_out: dict[str, set] = field(default_factory=dict)
    #: pseudo ids live across at least one call site
    live_across_call: set[int] = field(default_factory=set)


def compute_liveness(fn: MFunction, registers: RegisterModel) -> LivenessInfo:
    """Backward dataflow fixpoint over the CFG."""
    use_sets: dict[str, set] = {}
    def_sets: dict[str, set] = {}
    for block in fn.blocks:
        uses: set = set()
        defs: set = set()
        for instr in block.instrs:
            for reg in instr.uses():
                for key in entity_keys(reg, registers):
                    if key not in defs:
                        uses.add(key)
            for reg in instr.defs():
                for key in entity_keys(reg, registers):
                    defs.add(key)
        use_sets[block.label] = uses
        def_sets[block.label] = defs

    info = LivenessInfo()
    for block in fn.blocks:
        info.live_in[block.label] = set()
        info.live_out[block.label] = set()

    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            out: set = set()
            for successor in block.successors:
                out |= info.live_in.get(successor, set())
            new_in = use_sets[block.label] | (out - def_sets[block.label])
            if out != info.live_out[block.label]:
                info.live_out[block.label] = out
                changed = True
            if new_in != info.live_in[block.label]:
                info.live_in[block.label] = new_in
                changed = True

    # record pseudos live across calls (they must get callee-save registers
    # or spill; the interference edges with clobbered units enforce it, this
    # set is for spill-cost shaping and diagnostics)
    for block in fn.blocks:
        live = set(info.live_out[block.label])
        for instr in reversed(block.instrs):
            def_keys = {
                key
                for reg in instr.defs()
                for key in entity_keys(reg, registers)
            }
            use_keys = {
                key
                for reg in instr.uses()
                for key in entity_keys(reg, registers)
            }
            if instr.is_call:
                after = live - def_keys  # live through the call
                for key in after:
                    if key[0] == "p":
                        info.live_across_call.add(key[1])
            live = (live - def_keys) | use_keys
    return info


def instruction_live_sets(
    block: MBlock, live_out: set, registers: RegisterModel
) -> list[set]:
    """Live set *after* each instruction in the block, front to back."""
    after: list[set] = [set() for _ in block.instrs]
    live = set(live_out)
    for index in range(len(block.instrs) - 1, -1, -1):
        instr = block.instrs[index]
        after[index] = set(live)
        def_keys = {
            key for reg in instr.defs() for key in entity_keys(reg, registers)
        }
        use_keys = {
            key for reg in instr.uses() for key in entity_keys(reg, registers)
        }
        live = (live - def_keys) | use_keys
    return after
