"""The code generation driver: IL program -> machine program.

Mirrors the paper's back end structure: glue/lowering, instruction
selection, then hand-off to the chosen code generation strategy (which
orders register allocation and scheduling as it sees fit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.delayfill import fill_delay_slots
from repro.backend.layout import remove_fallthrough_jumps
from repro.backend.lower import lower_function
from repro.backend.mfunc import MFunction
from repro.backend.selector import Selector
from repro.backend.strategies import get_strategy
from repro.backend.strategies.base import StrategyStats
from repro.il.function import GlobalVar, ILProgram
from repro.machine.target import TargetMachine


@dataclass
class MachineProgram:
    """A compiled program: machine functions plus global data."""

    target: TargetMachine
    functions: list[MFunction] = field(default_factory=list)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    stats: dict[str, StrategyStats] = field(default_factory=dict)

    def function(self, name: str) -> MFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def instruction_count(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions)


class CodeGenerator:
    """Compile IL programs for one target with one strategy."""

    def __init__(
        self,
        target: TargetMachine,
        strategy: str = "postpass",
        heuristic: str = "maxdist",
        schedule: bool = True,
        fill_delay_slots: bool = False,
    ):
        self.target = target
        self.strategy_name = strategy
        self.strategy = get_strategy(strategy, heuristic=heuristic, schedule=schedule)
        self.fill_delay_slots = fill_delay_slots
        self.selector = Selector(target)

    def compile_il(self, program: ILProgram) -> MachineProgram:
        """Lower, select and run the strategy over every function."""
        out = MachineProgram(target=self.target, globals=dict(program.globals))
        for il_fn in program.functions:
            lower_function(il_fn, self.target, program.globals)
            mfn = self.selector.select_function(il_fn)
            stats = self.strategy.run(mfn, self.target)
            if self.fill_delay_slots:
                fill_delay_slots(mfn, self.target)
            remove_fallthrough_jumps(mfn)
            out.functions.append(mfn)
            out.stats[mfn.name] = stats
        return out
