"""The code generation driver: IL program -> machine program.

Mirrors the paper's back end structure: glue/lowering, instruction
selection, then hand-off to the chosen code generation strategy (which
orders register allocation and scheduling as it sees fit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.delayfill import fill_delay_slots
from repro.backend.layout import remove_fallthrough_jumps
from repro.backend.lower import lower_function
from repro.backend.mfunc import MFunction
from repro.backend.selector import Selector
from repro.backend.strategies import get_strategy
from repro.backend.strategies.base import StrategyStats
from repro.il.function import GlobalVar, ILProgram
from repro.machine.target import TargetMachine
import repro.obs as obs
from repro.options import UNSET, CompileOptions, merge_legacy_kwargs


@dataclass
class MachineProgram:
    """A compiled program: machine functions plus global data."""

    target: TargetMachine
    functions: list[MFunction] = field(default_factory=list)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    stats: dict[str, StrategyStats] = field(default_factory=dict)

    def function(self, name: str) -> MFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def instruction_count(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions)


class CodeGenerator:
    """Compile IL programs for one target under one
    :class:`~repro.options.CompileOptions` record.

    ``CodeGenerator(target, CompileOptions(strategy="rase"))`` is the
    only spelling; a bare strategy string or the pre-1.1 keywords
    (``strategy=``/``heuristic=``/``schedule=``/``fill_delay_slots=``)
    raise :class:`TypeError` naming the replacement.
    """

    def __init__(
        self,
        target: TargetMachine,
        options: CompileOptions | str | None = None,
        *,
        strategy=UNSET,
        heuristic=UNSET,
        schedule=UNSET,
        fill_delay_slots=UNSET,
    ):
        options = merge_legacy_kwargs(
            options,
            {
                "strategy": strategy,
                "heuristic": heuristic,
                "schedule": schedule,
                "fill_delay_slots": fill_delay_slots,
            },
            where="CodeGenerator",
        )
        self.target = target
        self.options = options
        self.strategy_name = options.strategy
        self.strategy = get_strategy(options.strategy, options=options)
        self.fill_delay_slots = options.fill_delay_slots
        self.selector = Selector(target)

    def compile_il(self, program: ILProgram) -> MachineProgram:
        """Lower, select and run the strategy over every function."""
        out = MachineProgram(target=self.target, globals=dict(program.globals))
        for il_fn in program.functions:
            with obs.span(
                f"codegen:{il_fn.name}",
                target=self.target.name,
                strategy=self.strategy_name,
            ):
                with obs.span("lower", function=il_fn.name):
                    lower_function(il_fn, self.target, program.globals)
                with obs.span("select", function=il_fn.name):
                    mfn = self.selector.select_function(il_fn)
                with obs.span(
                    f"strategy:{self.strategy_name}", function=mfn.name
                ):
                    stats = self.strategy.run(mfn, self.target)
                if self.fill_delay_slots:
                    with obs.span("delay_fill", function=mfn.name):
                        fill_delay_slots(mfn, self.target)
                remove_fallthrough_jumps(mfn)
            out.functions.append(mfn)
            out.stats[mfn.name] = stats
        return out
