"""Target-independent access to target load/store/add-immediate shapes.

Spill code, prologue/epilogue generation and ``*func`` expansion all need
"the instruction that loads/stores a value of type T at base+offset" and
"the instruction that adds an immediate to a register".  This helper
derives them once from the target's selection patterns, keeping those
phases free of per-target knowledge (the paper's TSI/TD separation)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.insts import Imm, MachineInstr, Reg, make_instr
from repro.cgg.patterns import PatOp, PatOperand, PatternKind
from repro.errors import MarionError
from repro.il.ops import ILOp
from repro.machine.instruction import OperandMode
from repro.machine.target import TargetMachine


@dataclass
class _LoadShape:
    desc: object
    def_position: int
    base_position: int
    off_position: int


@dataclass
class _StoreShape:
    desc: object
    value_position: int
    base_position: int
    off_position: int


@dataclass
class _AddImmShape:
    desc: object
    def_position: int
    src_position: int
    imm_position: int


class TargetMemoryAccess:
    """Lazily-derived load/store/add-immediate emitters for one target."""

    def __init__(self, target: TargetMachine):
        self.target = target
        self._loads: dict[str, _LoadShape] = {}
        self._stores: dict[str, _StoreShape] = {}
        self._add_imm: _AddImmShape | None = None

    # -- shape discovery --------------------------------------------------------

    def load_shape(self, type_name: str) -> _LoadShape:
        shape = self._loads.get(type_name)
        if shape is None:
            shape = self._find_load(type_name)
            self._loads[type_name] = shape
        return shape

    def store_shape(self, type_name: str) -> _StoreShape:
        shape = self._stores.get(type_name)
        if shape is None:
            shape = self._find_store(type_name)
            self._stores[type_name] = shape
        return shape

    def add_imm_shape(self) -> _AddImmShape:
        if self._add_imm is None:
            self._add_imm = self._find_add_imm()
        return self._add_imm

    def _find_load(self, type_name: str) -> _LoadShape:
        for pattern in self.target.pattern_order:
            if pattern.kind is not PatternKind.VALUE:
                continue
            root = pattern.root
            if not (isinstance(root, PatOp) and root.op is ILOp.INDIR):
                continue
            if not self._result_type_matches(pattern, type_name):
                continue
            shape = self._base_offset(root.kids[0])
            if shape is not None:
                return _LoadShape(pattern.desc, pattern.def_position, *shape)
        raise MarionError(
            f"target {self.target.name} has no base+offset load for {type_name}"
        )

    def _find_store(self, type_name: str) -> _StoreShape:
        for pattern in self.target.pattern_order:
            if pattern.kind is not PatternKind.STORE:
                continue
            address, value = pattern.root.kids
            if not (
                isinstance(value, PatOperand)
                and value.spec.mode is OperandMode.REG
            ):
                continue
            if value.spec.set_name != self.target.cwvm.general.get(type_name):
                continue
            shape = self._base_offset(address)
            if shape is not None:
                return _StoreShape(pattern.desc, value.position, *shape)
        raise MarionError(
            f"target {self.target.name} has no base+offset store for {type_name}"
        )

    def _find_add_imm(self) -> _AddImmShape:
        for pattern in self.target.pattern_order:
            if pattern.kind is not PatternKind.VALUE:
                continue
            root = pattern.root
            if not (
                isinstance(root, PatOp)
                and root.op is ILOp.ADD
                and len(root.kids) == 2
            ):
                continue
            base, imm = root.kids
            if not (
                isinstance(base, PatOperand)
                and base.spec.mode is OperandMode.REG
                and isinstance(imm, PatOperand)
                and imm.spec.mode is OperandMode.IMM
                and imm.spec.lo < 0 <= imm.spec.hi
            ):
                continue
            return _AddImmShape(
                pattern.desc, pattern.def_position, base.position, imm.position
            )
        raise MarionError(
            f"target {self.target.name} has no add-immediate instruction"
        )

    def _result_type_matches(self, pattern, type_name: str) -> bool:
        desc = pattern.desc
        if desc.type is not None:
            return desc.type == type_name
        spec = desc.operands[pattern.def_position]
        if spec.mode not in (OperandMode.REG, OperandMode.FIXED_REG):
            return False
        if spec.set_name != self.target.cwvm.general.get(type_name):
            return False
        return type_name in self.target.registers.set(spec.set_name).types

    def _base_offset(self, address):
        if not (isinstance(address, PatOp) and address.op is ILOp.ADD):
            return None
        base, offset = address.kids
        if (
            isinstance(base, PatOperand)
            and base.spec.mode is OperandMode.REG
            and isinstance(offset, PatOperand)
            and offset.spec.mode is OperandMode.IMM
        ):
            return base.position, offset.position
        return None

    # -- emitters --------------------------------------------------------------

    def load(self, type_name: str, dest, base, offset) -> MachineInstr:
        shape = self.load_shape(type_name)
        operands: list[object] = [None] * len(shape.desc.operands)
        operands[shape.def_position] = Reg(dest)
        operands[shape.base_position] = Reg(base)
        operands[shape.off_position] = Imm(offset)
        return make_instr(shape.desc, operands)

    def store(self, type_name: str, value, base, offset) -> MachineInstr:
        shape = self.store_shape(type_name)
        operands: list[object] = [None] * len(shape.desc.operands)
        operands[shape.value_position] = Reg(value)
        operands[shape.base_position] = Reg(base)
        operands[shape.off_position] = Imm(offset)
        return make_instr(shape.desc, operands)

    def add_imm(self, dest, src, value: int) -> MachineInstr:
        shape = self.add_imm_shape()
        operands: list[object] = [None] * len(shape.desc.operands)
        operands[shape.def_position] = Reg(dest)
        operands[shape.src_position] = Reg(src)
        operands[shape.imm_position] = Imm(value)
        return make_instr(shape.desc, operands)
