"""Branch delay slot filling (paper section 4.4's suggested extension).

Marion proper always fills delay slots with nops; the paper notes that
Gross and Hennessy's algorithm [GH82] "could be included in Marion as a
separate intra-procedural pass after instruction scheduling".  This module
is that pass, in its safe from-above form: a delay-slot nop is replaced by
an instruction scheduled *before* the branch in the same block — executed
on both paths, exactly as it was before the move — provided

* the branch does not depend on it (no DAG path candidate -> branch),
* nothing else in the block depends on it (it is the tail of its own
  dependence chains), and
* the slot belongs to the block's *first* control instruction with
  positive ``slots`` (always-executed semantics); the false-path jump's
  slot is left as a nop, since code hoisted there would execute on one
  path only.

The pass is off by default (``CodeGenerator(..., fill_delay_slots=True)``),
matching the paper's "Marion always fills branch delay slots with nops";
the ablation benchmark measures what it buys.
"""

from __future__ import annotations

from repro.backend.codedag import build_code_dag
from repro.backend.mfunc import MFunction
from repro.machine.target import TargetMachine


def fill_delay_slots(fn: MFunction, target: TargetMachine) -> int:
    """Replace delay-slot nops with useful work; returns slots filled."""
    return sum(_fill_block(block, target) for block in fn.blocks)


def _split(instrs):
    """(body, control_index) for the first control instruction, or None."""
    for index, instr in enumerate(instrs):
        if instr.is_branch_or_jump:
            return index
    return None


def _fill_block(block, target: TargetMachine) -> int:
    filled = 0
    while True:
        instrs = block.instrs
        control_index = _split(instrs)
        if control_index is None or control_index == 0:
            return filled
        branch = instrs[control_index]
        if branch.desc.slots <= 0:
            return filled

        # the first remaining nop within this branch's slot range
        slot_range = range(
            control_index + 1,
            min(control_index + 1 + branch.desc.slots, len(instrs)),
        )
        nop_position = next(
            (p for p in slot_range if instrs[p].is_nop), None
        )
        if nop_position is None:
            return filled

        body = instrs[:control_index]
        dag = build_code_dag(body + [branch], target, include_anti=True)
        branch_node = dag.nodes[-1]
        blocked = _ancestors(branch_node)
        body_nodes = dag.nodes[:-1]

        candidate_index = None
        for index in range(len(body) - 1, -1, -1):
            node = body_nodes[index]
            instr = node.instr
            if instr.is_nop or instr.is_control or instr.is_call:
                continue
            if node in blocked:
                continue
            if any(edge.dst is not branch_node for edge in node.succs):
                continue  # something in the body depends on it
            candidate_index = index
            break
        if candidate_index is None:
            return filled

        candidate = body[candidate_index]
        candidate.comment = (
            (candidate.comment + " " if candidate.comment else "")
            + "(filled delay slot)"
        )
        new_instrs = (
            body[:candidate_index]
            + body[candidate_index + 1 :]
            + [branch]
            + instrs[control_index + 1 :]
        )
        # the nop position shifted left by one after removing the candidate
        new_instrs[nop_position - 1] = candidate
        block.instrs = new_instrs
        block.schedule_cost = max(0, block.schedule_cost - 1)
        filled += 1


def _ancestors(node) -> set:
    seen = {node}
    stack = [node]
    while stack:
        current = stack.pop()
        for edge in current.preds:
            if edge.src not in seen:
                seen.add(edge.src)
                stack.append(edge.src)
    return seen
