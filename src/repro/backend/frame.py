"""Frame layout, prologue/epilogue insertion, and move expansion.

Runs after register allocation and before final scheduling, so the
prologue/epilogue instructions are themselves scheduled and their delay
behaviour is handled by the ordinary machinery.

Frame shape (CWVM model, stack grows down):

    fp  ->  +-----------------------+   fp == caller's sp
            | locals / spill slots  |   negative offsets from fp
            | saved callee-saves    |
            | saved retaddr         |
            | saved caller fp       |
    sp  ->  +-----------------------+   sp == fp - frame_size
"""

from __future__ import annotations

from repro.backend.insts import Imm, MachineInstr, Reg, make_instr
from repro.backend.memaccess import TargetMemoryAccess
from repro.backend.mfunc import MFunction
from repro.backend.values import FRAME_OFFSET_REACH, SlotOffset
from repro.errors import MarionError
from repro.machine.instruction import InstrKind
from repro.machine.registers import PhysReg
from repro.machine.target import TargetMachine


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def finish_function(
    fn: MFunction, target: TargetMachine, used_callee_save: list[PhysReg]
) -> None:
    """Expand func-moves, lay out the frame and insert prologue/epilogue."""
    expand_func_moves(fn, target)
    remove_identity_moves(fn, target)
    layout_frame(fn, target, used_callee_save)
    insert_prologue_epilogue(fn, target, used_callee_save)
    resolve_slot_offsets(fn)


def expand_func_moves(fn: MFunction, target: TargetMachine) -> None:
    """Replace ``*func`` move instructions (e.g. TOYP ``*movd``) with the
    sequences their escape functions generate, now that operands are
    physical registers."""
    from repro.backend.selector import FuncContext

    for block in fn.blocks:
        out: list[MachineInstr] = []
        for instr in block.instrs:
            if instr.desc.func is None:
                out.append(instr)
                continue
            fn_escape = target.funcs.get(instr.desc.func)
            if fn_escape is None:
                raise MarionError(
                    f"no escape function registered for *{instr.desc.func}"
                )
            context = FuncContext(target, out.append, instr.operands)
            fn_escape(context)
        block.instrs = out


def remove_identity_moves(fn: MFunction, target: TargetMachine) -> None:
    """Drop moves whose source and destination were colored identically."""
    for block in fn.blocks:
        kept: list[MachineInstr] = []
        for instr in block.instrs:
            if (
                instr.desc.is_move
                and len(instr.desc.def_operands) == 1
                and len(instr.desc.use_operands) == 1
            ):
                dst = instr.operands[instr.desc.def_operands[0]]
                src = instr.operands[instr.desc.use_operands[0]]
                if (
                    isinstance(dst, Reg)
                    and isinstance(src, Reg)
                    and dst.reg == src.reg
                ):
                    continue
            kept.append(instr)
        block.instrs = kept


def layout_frame(
    fn: MFunction, target: TargetMachine, used_callee_save: list[PhysReg]
) -> None:
    """Assign fp-relative offsets to every frame slot."""
    cwvm = target.cwvm
    # save areas become ordinary slots so one layout covers everything
    fn._save_slots = {}
    registers_to_save: list[PhysReg] = []
    if used_callee_save:
        registers_to_save.extend(used_callee_save)
    if fn.has_calls and cwvm.retaddr is not None:
        registers_to_save.append(cwvm.retaddr)
    need_frame = bool(fn.frame_slots) or bool(registers_to_save) or fn.has_calls
    if need_frame:
        registers_to_save.append(cwvm.fp)
    for reg in registers_to_save:
        size = 4 * len(target.registers.units_of(reg))
        slot = fn.new_slot(size, size, name=f"save.{reg}")
        fn._save_slots[reg] = slot

    running = 0
    for slot in fn.frame_slots:
        alignment = max(slot.align, 4)
        running = -_align(-running + slot.size, alignment)
        slot.offset = running
    fn.frame_size = _align(-running, 8)
    fn.saved_registers = registers_to_save
    if fn.frame_size > FRAME_OFFSET_REACH:
        raise MarionError(
            f"{fn.name}: frame size {fn.frame_size} exceeds the assumed "
            f"immediate reach {FRAME_OFFSET_REACH}"
        )


def insert_prologue_epilogue(
    fn: MFunction, target: TargetMachine, used_callee_save: list[PhysReg]
) -> None:
    if fn.frame_size == 0:
        return
    cwvm = target.cwvm
    memory = TargetMemoryAccess(target)
    sp, fp = cwvm.sp, cwvm.fp
    size = fn.frame_size

    def save_type(reg: PhysReg) -> str:
        rset = target.registers.set(reg.set_name)
        return "double" if rset.units_per_reg == 2 else "int"

    prologue: list[MachineInstr] = []
    prologue.append(memory.add_imm(sp, sp, -size))
    for reg, slot in fn._save_slots.items():
        # store relative to the *new* sp: sp_offset = fp_offset + size
        prologue.append(
            memory.store(save_type(reg), reg, sp, slot.offset + size)
        )
    prologue.append(memory.add_imm(fp, sp, size))
    for instr in prologue:
        instr.comment = instr.comment or "prologue"
    fn.entry.instrs[:0] = prologue

    for block in fn.blocks:
        out: list[MachineInstr] = []
        for instr in block.instrs:
            if instr.desc.kind is InstrKind.RET:
                epilogue: list[MachineInstr] = []
                for reg, slot in fn._save_slots.items():
                    epilogue.append(
                        memory.load(save_type(reg), reg, sp, slot.offset + size)
                    )
                epilogue.append(memory.add_imm(sp, sp, size))
                for restore in epilogue:
                    restore.comment = restore.comment or "epilogue"
                # the return depends on everything the epilogue restores
                instr.implicit_uses = list(instr.implicit_uses) + [
                    reg
                    for reg in fn._save_slots
                    if reg not in instr.implicit_uses
                ] + ([sp] if sp not in instr.implicit_uses else [])
                out.extend(epilogue)
            out.append(instr)
        block.instrs = out


def resolve_slot_offsets(fn: MFunction) -> None:
    """Replace symbolic SlotOffset immediates with their laid-out values."""
    for block in fn.blocks:
        for instr in block.instrs:
            for position, operand in enumerate(instr.operands):
                if isinstance(operand, Imm) and isinstance(
                    operand.value, SlotOffset
                ):
                    slot_offset = operand.value
                    if slot_offset.slot.offset is None:
                        raise MarionError(
                            f"slot {slot_offset.slot} was never laid out"
                        )
                    instr.operands[position] = Imm(
                        slot_offset.slot.offset + slot_offset.addend
                    )
