"""Machine instruction instances — the back end's working representation.

A :class:`MachineInstr` pairs an :class:`InstrDesc` with concrete operands.
Operands are registers (pseudo before allocation, physical after),
immediates (possibly symbolic, see :mod:`repro.backend.values`) or labels.
Implicit uses/defs carry calling-convention effects (argument registers
consumed by a call, caller-save registers it clobbers, ...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.backend.values import fold_halves
from repro.il.node import PseudoReg
from repro.machine.instruction import InstrDesc, InstrKind, OperandMode
from repro.machine.registers import PhysReg

_instr_counter = itertools.count(1)


@dataclass(frozen=True)
class Reg:
    """Register operand: pseudo- or physical register."""

    reg: object  # PseudoReg | PhysReg

    def __str__(self) -> str:
        return str(self.reg)

    @property
    def is_physical(self) -> bool:
        return isinstance(self.reg, PhysReg)


@dataclass(frozen=True)
class Imm:
    """Immediate operand; value may be symbolic."""

    value: object

    def __str__(self) -> str:
        return str(fold_halves(self.value))


@dataclass(frozen=True)
class Lab:
    """Branch/call target label."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(eq=False)
class MachineInstr:
    """One emitted machine instruction (or sub-operation)."""

    desc: InstrDesc
    operands: list[object] = field(default_factory=list)
    implicit_uses: list[PhysReg] = field(default_factory=list)
    implicit_defs: list[PhysReg] = field(default_factory=list)
    comment: str = ""
    id: int = field(default_factory=lambda: next(_instr_counter))

    def __str__(self) -> str:
        text = self.desc.mnemonic
        if self.operands:
            text += " " + ", ".join(str(op) for op in self.operands)
        return text

    def __repr__(self) -> str:
        return f"MachineInstr({self})"

    # -- register effects ---------------------------------------------------

    def defs(self) -> list[object]:
        """Registers written: explicit def operands plus implicit defs."""
        out = [
            self.operands[i].reg
            for i in self.desc.def_operands
            if isinstance(self.operands[i], Reg)
        ]
        out.extend(self.implicit_defs)
        return out

    def uses(self) -> list[object]:
        """Registers read: explicit use operands plus implicit uses."""
        out = [
            self.operands[i].reg
            for i in self.desc.use_operands
            if isinstance(self.operands[i], Reg)
        ]
        # fixed-register operands not named in the semantics still occupy
        # their register (e.g. the r[0] source of the TOYP move)
        out.extend(self.implicit_uses)
        return out

    def reg_operand_positions(self) -> list[int]:
        return [
            i for i, op in enumerate(self.operands) if isinstance(op, Reg)
        ]

    def rewrite_reg(self, index: int, reg) -> None:
        self.operands[index] = Reg(reg)

    def pseudo_operands(self) -> list[PseudoReg]:
        return [
            op.reg
            for op in self.operands
            if isinstance(op, Reg) and isinstance(op.reg, PseudoReg)
        ]

    # -- classification ------------------------------------------------------

    @property
    def is_control(self) -> bool:
        return self.desc.is_control

    @property
    def is_call(self) -> bool:
        return self.desc.kind is InstrKind.CALL

    @property
    def is_branch_or_jump(self) -> bool:
        return self.desc.kind in (InstrKind.BRANCH, InstrKind.JUMP, InstrKind.RET)

    @property
    def is_nop(self) -> bool:
        return self.desc.kind is InstrKind.NOP

    def branch_target(self) -> str | None:
        for position in self.desc.label_operands:
            operand = self.operands[position]
            if isinstance(operand, Lab):
                return operand.name
        return None


def make_instr(
    desc: InstrDesc,
    operands: list[object],
    comment: str = "",
) -> MachineInstr:
    """Build an instruction, auto-filling fixed-register operand slots."""
    filled: list[object] = []
    for spec, operand in zip(desc.operands, operands):
        if operand is None and spec.mode is OperandMode.FIXED_REG:
            operand = Reg(PhysReg(spec.set_name, spec.reg_index))
        filled.append(operand)
    if len(filled) != len(desc.operands):
        raise ValueError(
            f"{desc.mnemonic}: expected {len(desc.operands)} operands, "
            f"got {len(operands)}"
        )
    return MachineInstr(desc, filled, comment=comment)
