"""Textual assembly output (for examples, docs and debugging)."""

from __future__ import annotations

from repro.backend.codegen import MachineProgram
from repro.backend.mfunc import MFunction


def format_instr(instr) -> str:
    """One instruction as text, with its comment in a fixed column."""
    text = str(instr)
    if instr.comment:
        return f"{text:<40} ; {instr.comment}"
    return text


def format_mfunction(fn: MFunction) -> str:
    """A function's labelled blocks as an assembly listing."""
    lines = [f"# function {fn.name} (frame {fn.frame_size} bytes)"]
    for block in fn.blocks:
        lines.append(f"{block.label}:")
        lines.extend(f"        {format_instr(i)}" for i in block.instrs)
    return "\n".join(lines)


def format_program(program: MachineProgram) -> str:
    """A whole compiled program: data directory plus every function."""
    header = [f"# target: {program.target.name}"]
    if program.globals:
        header.append("# data:")
        header.extend(
            f"#   {name}: {var.type}[{var.count}] ({var.size} bytes)"
            for name, var in program.globals.items()
        )
    parts = ["\n".join(header)]
    parts.extend(format_mfunction(fn) for fn in program.functions)
    return "\n\n".join(parts)
