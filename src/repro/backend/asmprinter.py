"""Textual assembly output (for examples, docs and debugging).

The ``explain`` mode annotates the listing with the final schedule's
observability data (``MBlock.issue_cycles`` / ``MBlock.stall_events``,
recorded by the strategies' last scheduling pass): every instruction
carries its issue cycle, and committed stall slots appear as comment
lines at the point in the stream where the scheduler gave up a cycle —
``repro compile --explain-schedule`` prints this form.
"""

from __future__ import annotations

from repro.backend.codegen import MachineProgram
from repro.backend.mfunc import MBlock, MFunction


def format_instr(instr) -> str:
    """One instruction as text, with its comment in a fixed column."""
    text = str(instr)
    if instr.comment:
        return f"{text:<40} ; {instr.comment}"
    return text


def _reason_histogram(events) -> str:
    counts: dict[str, int] = {}
    for _cycle, reason in events:
        counts[reason] = counts.get(reason, 0) + 1
    return ", ".join(
        f"{reason} x{count}" for reason, count in sorted(counts.items())
    )


def _format_block_explained(block: MBlock) -> list[str]:
    """A block's listing with issue cycles and stall commentary."""
    lines = []
    head = f"{block.label}:"
    if block.stall_events:
        head = f"{head:<40} ; stalls: {_reason_histogram(block.stall_events)}"
    lines.append(head)
    remaining = sorted(block.stall_events)
    for instr in block.instrs:
        cycle = block.issue_cycles.get(instr.id)
        while remaining and cycle is not None and remaining[0][0] < cycle:
            at, reason = remaining.pop(0)
            lines.append(f"        ; -- stall @{at}: {reason}")
        text = format_instr(instr)
        if cycle is not None:
            text = f"{text:<48} ; @{cycle}"
        lines.append(f"        {text}")
    for at, reason in remaining:
        lines.append(f"        ; -- stall @{at}: {reason}")
    return lines


def format_mfunction(fn: MFunction, explain: bool = False) -> str:
    """A function's labelled blocks as an assembly listing."""
    lines = [f"# function {fn.name} (frame {fn.frame_size} bytes)"]
    for block in fn.blocks:
        if explain:
            lines.extend(_format_block_explained(block))
        else:
            lines.append(f"{block.label}:")
            lines.extend(f"        {format_instr(i)}" for i in block.instrs)
    return "\n".join(lines)


def format_program(program: MachineProgram, explain: bool = False) -> str:
    """A whole compiled program: data directory plus every function."""
    header = [f"# target: {program.target.name}"]
    if program.globals:
        header.append("# data:")
        header.extend(
            f"#   {name}: {var.type}[{var.count}] ({var.size} bytes)"
            for name, var in program.globals.items()
        )
    if explain:
        header.append(
            "# schedule explanation: '@N' = issue cycle in the final "
            "per-block schedule; '-- stall' lines are committed nop slots"
        )
        for fn in program.functions:
            stats = program.stats.get(fn.name)
            if stats is not None and stats.stall_reasons:
                reasons = ", ".join(
                    f"{reason} x{count}"
                    for reason, count in sorted(stats.stall_reasons.items())
                )
                header.append(
                    f"#   {fn.name}: {stats.nop_slots} nop slots ({reasons})"
                )
    parts = ["\n".join(header)]
    parts.extend(
        format_mfunction(fn, explain=explain) for fn in program.functions
    )
    return "\n\n".join(parts)
