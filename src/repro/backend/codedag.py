"""The code DAG (paper section 4.1).

Nodes are machine instructions; directed labelled edges are dependences.
An edge (x, y) with label i means y cannot issue fewer than i cycles after
x.  Edge types follow the paper:

* type 1 — true dependences, labelled with x's operation latency (or an
  ``%aux`` override); true dependences through temporal registers are
  marked with their clock;
* type 2 — memory ordering;
* type 3 — anti- and output-dependences on the same register, which some
  strategies need (after allocation, physical register reuse).

The DAG is threaded by the *code thread* — the input instruction order,
which is a topological sort.  The builder also adds the *protection edges*
of section 4.6 that keep temporal sequences deadlock-free (figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.insts import MachineInstr, Reg
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg, RegisterModel
from repro.machine.target import TargetMachine


@dataclass(eq=False)
class DagEdge:
    """A dependence: dst may not issue fewer than ``latency`` cycles after
    src; ``kind`` is the paper's edge type (1 true / 2 memory / 3 anti /
    4 protection), and temporal true edges carry their clock."""

    src: "DagNode"
    dst: "DagNode"
    latency: int
    kind: int  # 1 = true, 2 = memory, 3 = anti/output, 4 = protection
    clock: str | None = None  # set on temporal (true) edges

    @property
    def is_temporal(self) -> bool:
        return self.clock is not None


@dataclass(eq=False)
class DagNode:
    """One instruction in the code DAG, threaded by ``index``."""

    instr: MachineInstr
    index: int  # position in the code thread
    preds: list[DagEdge] = field(default_factory=list)
    succs: list[DagEdge] = field(default_factory=list)
    priority: int = 0  # maximum distance to a leaf (section 4.2)

    def __repr__(self) -> str:
        return f"DagNode({self.index}: {self.instr})"


@dataclass
class CodeDag:
    """The per-block dependence DAG the scheduler consumes."""

    nodes: list[DagNode]
    target: TargetMachine

    def roots(self) -> list[DagNode]:
        return [n for n in self.nodes if not n.preds]

    def edges(self) -> list[DagEdge]:
        return [e for n in self.nodes for e in n.succs]

    def sequence_head(self, node: DagNode, clock: str) -> DagNode:
        """Walk temporal edges of ``clock`` backwards to the sequence head."""
        current = node
        while True:
            sources = [
                e.src for e in current.preds if e.is_temporal and e.clock == clock
            ]
            if not sources:
                return current
            current = sources[0]

    def sequence_of(self, node: DagNode, clock: str) -> set[DagNode]:
        """All nodes of the temporal sequence containing ``node``."""
        head = self.sequence_head(node, clock)
        members = {head}
        frontier = [head]
        while frontier:
            current = frontier.pop()
            for edge in current.succs:
                if edge.is_temporal and edge.clock == clock and edge.dst not in members:
                    members.add(edge.dst)
                    frontier.append(edge.dst)
        return members


def _reg_keys(reg, registers: RegisterModel):
    """Dependence keys for a register: pseudo id, or aliasing units."""
    if isinstance(reg, PseudoReg):
        return (("p", reg.id),)
    assert isinstance(reg, PhysReg)
    return tuple(("u",) + unit for unit in registers.units_of(reg))


def build_code_dag(
    instrs: list[MachineInstr],
    target: TargetMachine,
    include_anti: bool = True,
) -> CodeDag:
    """Build the code DAG for one basic block's instructions."""
    nodes = [DagNode(instr, i) for i, instr in enumerate(instrs)]
    dag = CodeDag(nodes, target)
    registers = target.registers

    last_def: dict = {}  # reg key -> DagNode
    uses_since_def: dict = {}  # reg key -> list[DagNode]
    last_store: DagNode | None = None
    loads_since_store: list[DagNode] = []
    temporal_writer: dict[str, DagNode] = {}  # temporal reg -> DagNode
    temporal_readers: dict[str, list[DagNode]] = {}

    def add_edge(src, dst, latency, kind, clock=None):
        if src is dst:
            return
        for edge in src.succs:
            if edge.dst is dst:
                # keep one edge with the strongest constraint
                if latency > edge.latency:
                    edge.latency = latency
                if clock is not None and edge.clock is None:
                    edge.clock = clock
                    edge.kind = kind
                return
        edge = DagEdge(src, dst, latency, kind, clock)
        src.succs.append(edge)
        dst.preds.append(edge)

    for node in nodes:
        instr = node.instr
        desc = instr.desc

        # --- type 1: true dependences on registers ---
        for reg in instr.uses():
            for key in _reg_keys(reg, registers):
                producer = last_def.get(key)
                if producer is not None:
                    add_edge(producer, node, _true_latency(producer, node, target), 1)
                uses_since_def.setdefault(key, []).append(node)

        # --- type 1 temporal: true dependences through temporal registers ---
        for name in desc.temporal_reads:
            producer = temporal_writer.get(name)
            if producer is not None:
                clock = target.temporal_clock(name)
                add_edge(
                    producer,
                    node,
                    _true_latency(producer, node, target),
                    1,
                    clock=clock,
                )
            temporal_readers.setdefault(name, []).append(node)

        # --- type 2: memory ordering ---
        reads_mem = desc.reads_memory or instr.is_call
        writes_mem = desc.writes_memory or instr.is_call
        if reads_mem:
            if last_store is not None:
                add_edge(last_store, node, max(1, last_store.instr.desc.latency), 2)
            loads_since_store.append(node)
        if writes_mem:
            if last_store is not None:
                add_edge(last_store, node, 1, 2)
            for load in loads_since_store:
                add_edge(load, node, 0, 2)
            last_store = node
            loads_since_store = []

        # --- type 3: anti- and output-dependences ---
        for reg in instr.defs():
            for key in _reg_keys(reg, registers):
                if include_anti:
                    for user in uses_since_def.get(key, ()):
                        add_edge(user, node, 0, 3)
                    producer = last_def.get(key)
                    if producer is not None:
                        add_edge(producer, node, 1, 3)
                last_def[key] = node
                uses_since_def[key] = []
        # temporal registers: order writers (output dependence per register)
        for name in desc.temporal_writes:
            producer = temporal_writer.get(name)
            clock = target.temporal_clock(name)
            if producer is not None:
                add_edge(producer, node, 1, 3)
            for reader in temporal_readers.get(name, ()):
                add_edge(reader, node, 0, 3)
            temporal_writer[name] = node
            temporal_readers[name] = []

    _add_protection_edges(dag, add_edge)
    _compute_priorities(dag)
    return dag


def _true_latency(producer: DagNode, consumer: DagNode, target: TargetMachine) -> int:
    """The label of a true-dependence edge: the producer's latency, unless
    an ``%aux`` directive overrides it for this instruction pair."""
    rule = target.aux_latency(producer.instr.desc.mnemonic, consumer.instr.desc.mnemonic)
    if rule is not None:
        first = _operand_reg(producer.instr, rule.first_operand - 1)
        second = _operand_reg(consumer.instr, rule.second_operand - 1)
        if first is not None and first == second:
            return rule.latency
    return producer.instr.desc.latency


def _operand_reg(instr: MachineInstr, position: int):
    if position < len(instr.operands) and isinstance(instr.operands[position], Reg):
        return instr.operands[position].reg
    return None


def _add_protection_edges(dag: CodeDag, add_edge) -> None:
    """Section 4.6: protect temporal sequences against alternate entries.

    For every alternate entry (y, x) into a temporal sequence T based on
    clock k (x in T but not its head), search backward from y; every
    ancestor that affects k and is outside T gets an edge to T's head, so
    all ancestors of sequence members are scheduled before the head and the
    non-backtracking scheduler cannot deadlock (figure 6).
    """
    temporal_clocks = {
        e.clock for n in dag.nodes for e in n.succs if e.is_temporal
    }
    for clock in temporal_clocks:
        members_cache: dict[int, set[DagNode]] = {}
        for node in dag.nodes:
            incoming_temporal = [
                e for e in node.preds if e.is_temporal and e.clock == clock
            ]
            if not incoming_temporal:
                continue  # node is a head or not in a sequence for this clock
            sequence = None
            head = None
            alternates = [
                e for e in node.preds if not (e.is_temporal and e.clock == clock)
            ]
            if not alternates:
                continue
            head = dag.sequence_head(node, clock)
            key = id(head)
            if key not in members_cache:
                members_cache[key] = dag.sequence_of(head, clock)
            sequence = members_cache[key]
            for entry in alternates:
                for ancestor in _ancestors_inclusive(entry.src):
                    if ancestor in sequence:
                        continue
                    if ancestor.instr.desc.affects_clock == clock and not _reachable(
                        head, ancestor
                    ):
                        add_edge(ancestor, head, 0, 4)


def _reachable(src: DagNode, dst: DagNode) -> bool:
    """True iff ``dst`` is reachable from ``src`` along DAG edges."""
    seen = {id(src)}
    stack = [src]
    while stack:
        current = stack.pop()
        if current is dst:
            return True
        for edge in current.succs:
            if id(edge.dst) not in seen:
                seen.add(id(edge.dst))
                stack.append(edge.dst)
    return False


def _ancestors_inclusive(node: DagNode):
    seen = {id(node)}
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for edge in current.preds:
            if id(edge.src) not in seen:
                seen.add(id(edge.src))
                stack.append(edge.src)


def _compute_priorities(dag: CodeDag) -> None:
    """Maximum distance along any path to a leaf (section 4.2)."""
    for node in reversed(dag.nodes):  # thread order is topological
        best = node.instr.desc.latency
        for edge in node.succs:
            best = max(best, edge.latency + edge.dst.priority)
        node.priority = best
