"""Interference graph construction (paper section 2.2).

Nodes are pseudo-registers; edges record that two pseudos (or a pseudo and
a physical-register *unit*) are simultaneously live and may not share
units.  Following Chaitin, the graph is built from the instruction order
presented to the allocator: a definition interferes with everything live
after the defining instruction (minus the source of a move, so moves can
share a register)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.insts import Reg
from repro.backend.liveness import LivenessInfo, entity_keys, instruction_live_sets
from repro.backend.mfunc import MFunction
from repro.il.node import PseudoReg
from repro.machine.registers import RegisterModel


@dataclass
class InterferenceGraph:
    """Adjacency over pseudo ids, plus per-pseudo unit conflicts."""

    pseudos: dict[int, PseudoReg] = field(default_factory=dict)
    adjacency: dict[int, set[int]] = field(default_factory=dict)
    unit_conflicts: dict[int, set] = field(default_factory=dict)  # id -> unit keys
    #: spill cost per pseudo id (uses weighted by loop depth)
    spill_cost: dict[int, float] = field(default_factory=dict)
    #: move pairs (a, b) — same color is profitable
    move_pairs: set[tuple[int, int]] = field(default_factory=set)

    def ensure(self, pseudo: PseudoReg) -> None:
        if pseudo.id not in self.pseudos:
            self.pseudos[pseudo.id] = pseudo
            self.adjacency[pseudo.id] = set()
            self.unit_conflicts[pseudo.id] = set()
            self.spill_cost[pseudo.id] = 0.0

    def add_edge(self, a: PseudoReg, b: PseudoReg) -> None:
        if a.id == b.id:
            return
        self.ensure(a)
        self.ensure(b)
        self.adjacency[a.id].add(b.id)
        self.adjacency[b.id].add(a.id)

    def add_unit_conflict(self, pseudo: PseudoReg, unit_key) -> None:
        self.ensure(pseudo)
        self.unit_conflicts[pseudo.id].add(unit_key)

    def degree(self, pseudo_id: int) -> int:
        return len(self.adjacency[pseudo_id])

    def neighbors(self, pseudo_id: int) -> set[int]:
        return self.adjacency[pseudo_id]


def build_interference(
    fn: MFunction, liveness: LivenessInfo, registers: RegisterModel
) -> InterferenceGraph:
    """Build the interference graph from the instruction order presented
    (Chaitin): each definition interferes with everything live after it,
    except a move's source; spill costs accumulate 10^loop-depth per
    occurrence."""
    graph = InterferenceGraph()

    # make sure every pseudo is present even if it never interferes
    for pseudo in fn.pseudo_registers():
        graph.ensure(pseudo)

    for block in fn.blocks:
        weight = 10.0 ** min(block.loop_depth, 5)
        after_sets = instruction_live_sets(
            block, liveness.live_out[block.label], registers
        )
        for instr, live_after in zip(block.instrs, after_sets):
            # spill cost accounting
            for reg in instr.uses():
                if isinstance(reg, PseudoReg):
                    graph.ensure(reg)
                    graph.spill_cost[reg.id] += weight
            move_source_key = None
            if instr.desc.is_move and len(instr.desc.use_operands) == 1:
                source = instr.operands[instr.desc.use_operands[0]]
                if isinstance(source, Reg):
                    keys = entity_keys(source.reg, registers)
                    move_source_key = set(keys)

            for reg in instr.defs():
                if isinstance(reg, PseudoReg):
                    graph.ensure(reg)
                    graph.spill_cost[reg.id] += weight
                    def_keys = {("p", reg.id)}
                else:
                    def_keys = set(entity_keys(reg, registers))
                excluded = move_source_key or set()
                for key in live_after:
                    if key in def_keys or key in excluded:
                        continue
                    _record_conflict(graph, def_keys, key, reg, registers)

            if instr.desc.is_move and move_source_key is not None:
                defs = instr.defs()
                if len(defs) == 1 and isinstance(defs[0], PseudoReg):
                    for key in move_source_key:
                        if key[0] == "p":
                            graph.move_pairs.add(
                                tuple(sorted((defs[0].id, key[1])))
                            )
    return graph


def _record_conflict(graph, def_keys, live_key, def_reg, registers) -> None:
    if isinstance(def_reg, PseudoReg):
        if live_key[0] == "p":
            other = graph.pseudos.get(live_key[1])
            if other is not None:
                graph.add_edge(def_reg, other)
        else:
            graph.add_unit_conflict(def_reg, live_key)
    elif live_key[0] == "p":
        # a physical definition makes its units hostile to live pseudos
        other = graph.pseudos.get(live_key[1])
        if other is not None:
            for unit in def_keys:
                graph.add_unit_conflict(other, unit)
