"""IL lowering and normalisation, run once before glue/selection.

* ``ADDRL`` becomes ``fp + SlotOffset`` so frame accesses match the
  ``m[$base + $offset]`` load/store patterns;
* ``ADDRG`` becomes a constant holding a :class:`SymbolRef`, matched by
  ``+abs`` immediate operands (``la``-style instructions) or split by glue
  into ``high``/``low`` halves;
* constants move to the right of commutative operators so immediate-form
  patterns (``addi``) match;
* integer-constant subtrees fold; multiplication by a power of two becomes
  a shift;
* CJUMP conditions are normalised to relational form.
"""

from __future__ import annotations

from repro.backend.values import GpOffset, SlotOffset, SymbolRef
from repro.il.function import ILFunction
from repro.il.node import Node
from repro.il.ops import COMMUTATIVE_OPS, ILOp, RELATIONAL_OPS
from repro.machine.target import TargetMachine

_INT_MIN, _INT_MAX = -(2**31), 2**31 - 1


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value > _INT_MAX else value


_FOLDERS = {
    ILOp.ADD: lambda a, b: a + b,
    ILOp.SUB: lambda a, b: a - b,
    ILOp.MUL: lambda a, b: a * b,
    ILOp.BAND: lambda a, b: a & b,
    ILOp.BOR: lambda a, b: a | b,
    ILOp.BXOR: lambda a, b: a ^ b,
    ILOp.LSH: lambda a, b: a << (b & 31),
}


#: Globals at most this big are addressed gp-relative (MIPS -G style);
#: larger objects keep absolute addressing so the 64 KB gp window is never
#: exhausted by a handful of big arrays.
GP_SMALL_DATA_THRESHOLD = 512


def lower_function(fn: ILFunction, target: TargetMachine, globals_map=None) -> None:
    """Lower ``fn`` in place for ``target``.

    ``globals_map`` (name -> GlobalVar) lets the lowering decide which
    globals qualify for gp-relative addressing."""
    lowerer = _Lowerer(target, globals_map or {})
    for block in fn.blocks:
        block.statements = [lowerer.stmt(stmt) for stmt in block.statements]


class _Lowerer:
    def __init__(self, target: TargetMachine, globals_map=None):
        self.target = target
        self.fp = target.cwvm.fp
        self.gp = target.cwvm.gp
        self.globals_map = globals_map or {}
        # rewriting must preserve sharing (CSE nodes keep one identity)
        self.rewritten: dict[int, Node] = {}

    def _gp_addressable(self, name: str) -> bool:
        if self.gp is None:
            return False
        var = self.globals_map.get(name)
        return var is not None and var.size <= GP_SMALL_DATA_THRESHOLD

    def stmt(self, node: Node) -> Node:
        if node.op is ILOp.CJUMP:
            condition = self.expr(node.kids[0])
            if condition.op not in RELATIONAL_OPS:
                condition = Node(
                    ILOp.NE,
                    "int",
                    (condition, Node(ILOp.CNST, condition.type or "int", (), 0)),
                )
            return Node(ILOp.CJUMP, None, (condition,), node.value)
        return self.expr(node)

    def expr(self, node: Node) -> Node:
        if id(node) in self.rewritten:
            return self.rewritten[id(node)]
        out = self._rewrite(node)
        self.rewritten[id(node)] = out
        return out

    def _rewrite(self, node: Node) -> Node:
        if node.op is ILOp.ADDRL:
            fp_reg = Node(ILOp.REG, "int", (), self.fp)
            offset = Node(ILOp.CNST, "int", (), SlotOffset(node.value))
            return Node(ILOp.ADD, "int", (fp_reg, offset))
        if node.op is ILOp.ADDRG:
            if self._gp_addressable(node.value):
                gp_reg = Node(ILOp.REG, "int", (), self.gp)
                offset = Node(ILOp.CNST, "int", (), GpOffset(node.value))
                return Node(ILOp.ADD, "int", (gp_reg, offset))
            return Node(ILOp.CNST, "int", (), SymbolRef(node.value))

        kids = tuple(self.expr(kid) for kid in node.kids)
        node = Node(node.op, node.type, kids, node.value)

        # constants to the right of commutative operators
        if (
            node.op in COMMUTATIVE_OPS
            and len(kids) == 2
            and kids[0].op is ILOp.CNST
            and kids[1].op is not ILOp.CNST
        ):
            node = Node(node.op, node.type, (kids[1], kids[0]), node.value)
            kids = node.kids

        node = self._fold(node)
        node = self._strength_reduce(node)
        return node

    def _fold(self, node: Node) -> Node:
        if len(node.kids) != 2 or node.type != "int":
            return node
        left, right = node.kids
        if (
            node.op in _FOLDERS
            and left.op is ILOp.CNST
            and right.op is ILOp.CNST
            and isinstance(left.value, int)
            and isinstance(right.value, int)
        ):
            return Node(
                ILOp.CNST, "int", (), _wrap32(_FOLDERS[node.op](left.value, right.value))
            )
        # x + 0, x - 0, x * 1 identities
        if (
            right.op is ILOp.CNST
            and isinstance(right.value, int)
            and (
                (node.op in (ILOp.ADD, ILOp.SUB, ILOp.LSH, ILOp.RSH) and right.value == 0)
                or (node.op in (ILOp.MUL, ILOp.DIV) and right.value == 1)
            )
        ):
            return left
        # fold offset into SlotOffset / SymbolRef addends (addressing)
        if (
            node.op is ILOp.ADD
            and right.op is ILOp.CNST
            and isinstance(right.value, int)
            and left.op is ILOp.ADD
            and left.kids[1].op is ILOp.CNST
        ):
            base_const = left.kids[1].value
            if isinstance(base_const, SlotOffset):
                merged = SlotOffset(base_const.slot, base_const.addend + right.value)
                return Node(
                    ILOp.ADD,
                    "int",
                    (left.kids[0], Node(ILOp.CNST, "int", (), merged)),
                )
            if isinstance(base_const, GpOffset):
                merged_gp = GpOffset(base_const.name, base_const.addend + right.value)
                return Node(
                    ILOp.ADD,
                    "int",
                    (left.kids[0], Node(ILOp.CNST, "int", (), merged_gp)),
                )
            if isinstance(base_const, int):
                merged_const = _wrap32(base_const + right.value)
                return Node(
                    ILOp.ADD,
                    "int",
                    (left.kids[0], Node(ILOp.CNST, "int", (), merged_const)),
                )
        return node

    def _strength_reduce(self, node: Node) -> Node:
        if node.op is not ILOp.MUL or node.type != "int":
            return node
        left, right = node.kids
        if (
            right.op is ILOp.CNST
            and isinstance(right.value, int)
            and right.value > 0
            and (right.value & (right.value - 1)) == 0
        ):
            shift = right.value.bit_length() - 1
            return Node(
                ILOp.LSH, "int", (left, Node(ILOp.CNST, "int", (), shift))
            )
        return node
