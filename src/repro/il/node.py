"""IL nodes, pseudo-registers and frame slots."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.il.ops import ILOp, PURE_OPS

_pseudo_counter = itertools.count(1)
_slot_counter = itertools.count(1)


@dataclass(eq=False)
class PseudoReg:
    """A pseudo-register (paper section 2.1).

    ``is_global`` distinguishes registers live across basic blocks (user
    variables, call results) from block-local expression temporaries; the
    register allocator and the IPS/RASE strategies treat the two classes
    differently.
    """

    type: str  # 'int' | 'float' | 'double'
    name: str | None = None  # user variable name, for diagnostics
    is_global: bool = False
    #: non-general register set this pseudo must live in (e.g. a condition
    #: register set); None means the CWVM general set for its type
    set_name: str | None = None
    id: int = field(default_factory=lambda: next(_pseudo_counter))

    def __str__(self) -> str:
        tag = self.name or f"t{self.id}"
        return f"%{tag}"

    def __repr__(self) -> str:
        return f"PseudoReg({self}:{self.type})"

    def __hash__(self) -> int:
        return self.id


@dataclass(eq=False)
class FrameSlot:
    """A stack-frame allocation (spills, arrays, address-taken scalars)."""

    size: int  # bytes
    align: int = 4
    name: str | None = None
    offset: int | None = None  # fp-relative; assigned by frame layout
    id: int = field(default_factory=lambda: next(_slot_counter))

    def __str__(self) -> str:
        tag = self.name or f"slot{self.id}"
        where = f"@{self.offset}" if self.offset is not None else ""
        return f"[{tag}{where}]"

    def __hash__(self) -> int:
        return self.id


@dataclass(eq=False)
class Node:
    """A typed IL node.  Sharing a node between two parents marks a local
    common subexpression; the selector forces shared nodes into registers."""

    op: ILOp
    type: str | None = None  # None for statements with no value
    kids: tuple["Node", ...] = ()
    value: object = None  # constant / symbol / PseudoReg / FrameSlot / label

    def __str__(self) -> str:
        from repro.il.printer import format_node

        return format_node(self)

    def __repr__(self) -> str:
        return f"Node({self.op.value}:{self.type})"

    @property
    def is_pure(self) -> bool:
        return self.op in PURE_OPS

    def walk(self):
        """Yield this node and all descendants, preorder (may revisit shared
        nodes once per path; use :func:`unique_nodes` to deduplicate)."""
        yield self
        for kid in self.kids:
            yield from kid.walk()


def unique_nodes(roots) -> list[Node]:
    """All distinct nodes reachable from ``roots``, in preorder."""
    seen: set[int] = set()
    out: list[Node] = []

    def visit(node: Node) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        out.append(node)
        for kid in node.kids:
            visit(kid)

    for root in roots:
        visit(root)
    return out


def count_parents(roots) -> dict[int, int]:
    """Map ``id(node)`` to its number of parents within ``roots``.

    Roots themselves start at 0; a node reachable through two different
    parents (or twice from one parent) gets a count >= 2 and is a local
    common subexpression."""
    counts: dict[int, int] = {}
    seen: set[int] = set()

    def visit(node: Node) -> None:
        for kid in node.kids:
            counts[id(kid)] = counts.get(id(kid), 0) + 1
            if id(kid) not in seen:
                seen.add(id(kid))
                visit(kid)

    for root in roots:
        counts.setdefault(id(root), 0)
        if id(root) not in seen:
            seen.add(id(root))
            visit(root)
    return counts
