"""IL operator vocabulary."""

from __future__ import annotations

import enum


class ILOp(enum.Enum):
    # leaves
    CNST = "CNST"  # value: int or float constant
    ADDRG = "ADDRG"  # value: global symbol name (relocatable address)
    ADDRL = "ADDRL"  # value: FrameSlot (local, fp-relative)
    REG = "REG"  # value: PseudoReg (read)

    # memory
    INDIR = "INDIR"  # load: kids[0] = address
    ASGN = "ASGN"  # store statement: kids = (address, value)

    # register assignment statement
    SETREG = "SETREG"  # value: PseudoReg, kids[0] = value

    # arithmetic / logical
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"
    MOD = "MOD"
    NEG = "NEG"
    BAND = "BAND"
    BOR = "BOR"
    BXOR = "BXOR"
    BNOT = "BNOT"
    LSH = "LSH"
    RSH = "RSH"

    # relational (CJUMP conditions, or values reintroduced by glue)
    EQ = "EQ"
    NE = "NE"
    LT = "LT"
    LE = "LE"
    GT = "GT"
    GE = "GE"
    CMP = "CMP"  # the generic compare '::' (sign of left - right)

    # conversions
    CVT = "CVT"  # type = destination type; kids[0] typed with source type

    # control
    JUMP = "JUMP"  # value: target label
    CJUMP = "CJUMP"  # kids[0] = condition; value: target label (taken)
    CALL = "CALL"  # value: callee symbol; kids = arguments
    RET = "RET"  # kids: () or (value,)


RELATIONAL_OPS = frozenset(
    {ILOp.EQ, ILOp.NE, ILOp.LT, ILOp.LE, ILOp.GT, ILOp.GE}
)

COMMUTATIVE_OPS = frozenset(
    {ILOp.ADD, ILOp.MUL, ILOp.BAND, ILOp.BOR, ILOp.BXOR, ILOp.EQ, ILOp.NE}
)

#: Operators with no side effects, eligible for local CSE.
PURE_OPS = frozenset(
    {
        ILOp.CNST,
        ILOp.ADDRG,
        ILOp.ADDRL,
        ILOp.REG,
        ILOp.ADD,
        ILOp.SUB,
        ILOp.MUL,
        ILOp.DIV,
        ILOp.MOD,
        ILOp.NEG,
        ILOp.BAND,
        ILOp.BOR,
        ILOp.BXOR,
        ILOp.BNOT,
        ILOp.LSH,
        ILOp.RSH,
        ILOp.CVT,
        ILOp.CMP,
    }
)

#: Statement-root operators.
STATEMENT_OPS = frozenset(
    {ILOp.ASGN, ILOp.SETREG, ILOp.JUMP, ILOp.CJUMP, ILOp.CALL, ILOp.RET}
)
