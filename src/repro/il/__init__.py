"""Typed low-level intermediate language (the Lcc-style IL of section 2).

The front end produces, per function, a control-flow graph of basic blocks;
each block holds a list of *statement* trees (assignments, stores, branches,
calls, returns) built from typed operator nodes.  Local common
subexpressions share nodes, giving DAGs; the selector forces multi-parent
nodes into pseudo-registers exactly as the paper describes (section 2.1).
"""

from repro.il.ops import ILOp, RELATIONAL_OPS, COMMUTATIVE_OPS
from repro.il.node import Node, FrameSlot, PseudoReg
from repro.il.block import BasicBlock
from repro.il.function import ILFunction, ILProgram, GlobalVar
from repro.il.printer import format_function, format_node

__all__ = [
    "ILOp",
    "RELATIONAL_OPS",
    "COMMUTATIVE_OPS",
    "Node",
    "FrameSlot",
    "PseudoReg",
    "BasicBlock",
    "ILFunction",
    "ILProgram",
    "GlobalVar",
    "format_function",
    "format_node",
]
