"""Basic blocks and the control-flow graph."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.il.node import Node
from repro.il.ops import ILOp


@dataclass(eq=False)
class BasicBlock:
    """A basic block: a label, statement trees, and CFG edges.

    Control transfers only through the final statements: an optional CJUMP
    (whose fall-through is ``successors[-1]``) or JUMP/RET.  The scheduler
    operates within one block at a time (paper section 4).
    """

    label: str
    statements: list[Node] = field(default_factory=list)
    successors: list["BasicBlock"] = field(default_factory=list)
    predecessors: list["BasicBlock"] = field(default_factory=list)
    loop_depth: int = 0  # static nesting depth, for spill costs

    def __str__(self) -> str:
        return f"<block {self.label}>"

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.statements)} stmts)"

    def append(self, stmt: Node) -> None:
        self.statements.append(stmt)

    @property
    def terminator(self) -> Node | None:
        if self.statements and self.statements[-1].op in (
            ILOp.JUMP,
            ILOp.CJUMP,
            ILOp.RET,
        ):
            return self.statements[-1]
        return None

    def link_to(self, successor: "BasicBlock") -> None:
        if successor not in self.successors:
            self.successors.append(successor)
        if self not in successor.predecessors:
            successor.predecessors.append(self)
