"""Readable rendering of IL trees, blocks and functions (for tests/docs)."""

from __future__ import annotations

from repro.il.node import Node
from repro.il.ops import ILOp


def format_node(node: Node) -> str:
    op = node.op
    if op is ILOp.CNST:
        return str(node.value)
    if op is ILOp.ADDRG:
        return f"&{node.value}"
    if op is ILOp.ADDRL:
        return f"&{node.value}"
    if op is ILOp.REG:
        return str(node.value)
    if op is ILOp.INDIR:
        return f"*({format_node(node.kids[0])})"
    if op is ILOp.ASGN:
        return f"*({format_node(node.kids[0])}) = {format_node(node.kids[1])}"
    if op is ILOp.SETREG:
        return f"{node.value} = {format_node(node.kids[0])}"
    if op is ILOp.CVT:
        return f"({node.type})({format_node(node.kids[0])})"
    if op is ILOp.NEG:
        return f"-({format_node(node.kids[0])})"
    if op is ILOp.BNOT:
        return f"~({format_node(node.kids[0])})"
    if op is ILOp.JUMP:
        return f"goto {node.value}"
    if op is ILOp.CJUMP:
        return f"if {format_node(node.kids[0])} goto {node.value}"
    if op is ILOp.CALL:
        args = ", ".join(format_node(k) for k in node.kids)
        return f"{node.value}({args})"
    if op is ILOp.RET:
        if node.kids:
            return f"ret {format_node(node.kids[0])}"
        return "ret"

    symbols = {
        ILOp.ADD: "+",
        ILOp.SUB: "-",
        ILOp.MUL: "*",
        ILOp.DIV: "/",
        ILOp.MOD: "%",
        ILOp.BAND: "&",
        ILOp.BOR: "|",
        ILOp.BXOR: "^",
        ILOp.LSH: "<<",
        ILOp.RSH: ">>",
        ILOp.EQ: "==",
        ILOp.NE: "!=",
        ILOp.LT: "<",
        ILOp.LE: "<=",
        ILOp.GT: ">",
        ILOp.GE: ">=",
        ILOp.CMP: "::",
    }
    if op in symbols and len(node.kids) == 2:
        left, right = node.kids
        return f"({format_node(left)} {symbols[op]} {format_node(right)})"
    return f"{op.value}({', '.join(format_node(k) for k in node.kids)})"


def format_block(block) -> str:
    lines = [f"{block.label}:"]
    lines.extend(f"    {format_node(stmt)}" for stmt in block.statements)
    return "\n".join(lines)


def format_function(fn) -> str:
    params = ", ".join(f"{p.type} {p}" for p in fn.params)
    header = f"function {fn.name}({params}) -> {fn.return_type or 'void'}"
    return "\n".join([header] + [format_block(b) for b in fn.blocks])
