"""IL functions, programs and global data."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MarionError
from repro.il.block import BasicBlock
from repro.il.node import FrameSlot, PseudoReg


@dataclass
class GlobalVar:
    """A global scalar or array in the data segment."""

    name: str
    type: str  # element type
    count: int = 1  # number of elements (1 for scalars)
    initial: list | None = None  # initial values, if any

    @property
    def size(self) -> int:
        element = 8 if self.type == "double" else 4
        return element * self.count


@dataclass
class ILFunction:
    """One function in IL form."""

    name: str
    return_type: str | None
    params: list[PseudoReg] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)
    frame_slots: list[FrameSlot] = field(default_factory=list)
    # every pseudo-register the function mentions, for allocator bookkeeping
    pseudos: list[PseudoReg] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise MarionError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise MarionError(f"function {self.name} has no block {label!r}")

    def new_slot(self, size: int, align: int = 4, name: str | None = None) -> FrameSlot:
        slot = FrameSlot(size=size, align=align, name=name)
        self.frame_slots.append(slot)
        return slot

    def new_pseudo(
        self, type: str, name: str | None = None, is_global: bool = False
    ) -> PseudoReg:
        pseudo = PseudoReg(type=type, name=name, is_global=is_global)
        self.pseudos.append(pseudo)
        return pseudo


@dataclass
class ILProgram:
    """A whole compilation unit: functions plus global data."""

    functions: list[ILFunction] = field(default_factory=list)
    globals: dict[str, GlobalVar] = field(default_factory=dict)

    def function(self, name: str) -> ILFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise MarionError(f"program has no function {name!r}")
