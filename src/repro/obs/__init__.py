"""Structured observability: span traces, typed counters, stall taxonomy.

``repro.obs`` is the measurement substrate of the system.  It has two
cooperating layers:

* :class:`~repro.obs.trace.Trace` — a **span tree** plus typed counters
  for one traced activity (a compile, a simulation, a whole report run).
  Traces nest through a :mod:`contextvars` variable, so concurrent
  activities (threads, or the fork-started workers of the evaluation
  grid) each see only their own trace.  A trace exports as plain JSON
  (:meth:`~repro.obs.trace.Trace.to_json`) or as the Chrome
  ``trace_event`` format (:meth:`~repro.obs.trace.Trace.to_chrome_json`)
  that ``chrome://tracing`` / Perfetto render as a flame chart.

* :mod:`repro.obs.stalls` — the **stall taxonomy**: reason codes the list
  scheduler attaches to every nop or issue delay it commits, and the
  hazard kinds the pipeline model charges each stall cycle to.

The ambient process-wide metrics recorder in :mod:`repro.utils.timing`
is a thin adapter over a :class:`Trace` (aggregates only, no span tree);
hot paths keep their single-boolean guard.

Instrumented code uses the module-level helpers, which no-op when no
trace is active::

    from repro import obs

    with obs.span("codegen:main", strategy="rase"):
        ...
    obs.count("scheduler.blocks")
"""

from repro.obs.trace import (
    Span,
    Trace,
    count,
    current_trace,
    span,
    tracing,
)
from repro.obs import stalls

__all__ = [
    "Span",
    "Trace",
    "count",
    "current_trace",
    "span",
    "stalls",
    "tracing",
]
