"""The stall taxonomy: why a cycle was lost.

Two instruments share this vocabulary:

* the **list scheduler** classifies every nop or issue delay it commits
  (an idle cycle in the schedule, or an inserted delay-slot nop) with a
  *reason code* — these accumulate into
  :class:`~repro.backend.strategies.base.StrategyStats` and annotate the
  assembly under ``repro compile --explain-schedule``;
* the **pipeline model** charges every cycle the dynamic instruction
  stream's issue point advances to a *hazard kind* — these come back as
  ``SimResult.cycle_breakdown``.

Both taxonomies are conserved by construction: scheduler reason counts
sum to the schedule's nop slots (idle cycles + inserted nops), and the
simulator breakdown sums to the run's total stall cycles
(``cycles - 1``).  Tests assert both identities per target.
"""

from __future__ import annotations

# -- scheduler stall reasons (static schedule) ------------------------------

#: a ready instruction could not issue: a resource it needs is committed.
#: Parameterized form: ``resource_conflict(ALU)``.
RESOURCE_CONFLICT = "resource_conflict"
#: every unissued instruction is waiting on a dependence-edge delay.
#: Parameterized form: ``latency(lw)`` — the producer's mnemonic.
LATENCY = "latency"
#: an inserted delay-slot nop behind a control transfer (section 4.4)
BRANCH_DELAY = "branch_delay"
#: nothing is ready and nothing is waiting on a latency — the dependence
#: structure alone (e.g. a held-back control) left the cycle empty
EMPTY_READY_LIST = "empty_ready_list"
#: a ready instruction's packing classes do not intersect the cycle's
PACKING_CONFLICT = "packing_conflict"
#: Rule 1 (section 4.6): the instruction affects a clock with a pending
#: temporal destination
TEMPORAL_RULE1 = "temporal_rule1"


def resource_conflict(resource: str) -> str:
    """The reason code for a conflict on a named resource."""
    return f"{RESOURCE_CONFLICT}({resource})"


def latency(producer_mnemonic: str) -> str:
    """The reason code for a dependence delay behind ``producer``."""
    return f"{LATENCY}({producer_mnemonic})"


def reason_family(reason: str) -> str:
    """``resource_conflict(ALU)`` -> ``resource_conflict`` (for roll-ups)."""
    return reason.split("(", 1)[0]


def merge_reasons(into: dict[str, int], reasons: dict[str, int]) -> None:
    """Accumulate one reason histogram into another, in place."""
    for reason, count in reasons.items():
        into[reason] = into.get(reason, 0) + count


# -- simulator hazard kinds (dynamic stream) --------------------------------

#: fetch redirect after a taken control transfer (branch latency)
BRANCH = "branch"
#: register interlock behind a non-load producer's latency
#: (on the i860 this includes the fp-pipeline advance results)
LATENCY_KIND = "latency"
#: register interlock behind a load's result
LOAD_USE = "load_use"
#: the portion of a load interlock added by a data-cache miss
CACHE_MISS = "cache_miss"
#: temporal-register interlock: an explicitly advanced pipeline's clock
#: (i860 fp pipelines) had not ticked yet
FP_ADVANCE = "fp_advance"
#: load/store ordering (the model serializes memory operations)
MEMORY_ORDER = "memory_order"
#: structural hazard: a resource the instruction needs is committed;
#: includes issue-slot serialization (~one cycle per instruction on a
#: single-issue machine), so it dominates by design
RESOURCE = "resource"
#: dual-issue packing classes failed to intersect (i860)
PACKING = "packing"

#: every hazard kind the pipeline model can charge, in display order
SIM_STALL_KINDS = (
    RESOURCE,
    LATENCY_KIND,
    LOAD_USE,
    CACHE_MISS,
    FP_ADVANCE,
    MEMORY_ORDER,
    BRANCH,
    PACKING,
)
