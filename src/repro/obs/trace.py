"""The trace recorder: a span tree plus typed counters.

A :class:`Trace` records *where time went* (nested, named spans with
attributes) and *what happened* (integer counters and phase aggregates).
One trace covers one activity — a single compilation, a simulation run,
or an entire evaluation sweep — and is activated with :func:`tracing`::

    trace = Trace("run k7")
    with tracing(trace):
        executable = repro.compile_c(source, "r2000")
        repro.simulate(executable, "bench", options=SimOptions(trace=True))
    trace.write(path)                  # plain JSON
    trace.write(path, format="chrome") # chrome://tracing / Perfetto

Activation uses a :mod:`contextvars` variable: traces nest (the previous
trace is restored on exit) and parallel workers stay isolated — a thread
or a forked grid worker activating its own trace never sees, or writes
into, another worker's span tree.

Everything the trace records is wall-clock (``time.perf_counter``) and
process-local.  The picklable :meth:`Trace.summary` carries a trace's
aggregates across the evaluation grid's process boundary; the span tree
itself stays in the worker (ship the JSON export if you need it).
"""

from __future__ import annotations

import contextvars
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed region: a node of the trace's span tree."""

    name: str
    start: float  # perf_counter seconds
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_json(self, epoch: float) -> dict:
        out = {
            "name": self.name,
            "start_us": round((self.start - epoch) * 1e6),
            "dur_us": round(self.seconds * 1e6),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_json(epoch) for c in self.children]
        return out


class Trace:
    """A span tree plus typed counters for one traced activity.

    The aggregate views (``counters``, ``phase_seconds``, ``phase_calls``)
    accumulate by name across the whole trace — they are what
    :mod:`repro.utils.timing` exposes as the process metrics recorder,
    and what :meth:`summary` ships across process boundaries.
    """

    __slots__ = (
        "name",
        "epoch",
        "root",
        "counters",
        "phase_seconds",
        "phase_calls",
        "_stack",
    )

    def __init__(self, name: str = "trace"):
        self.name = name
        self.epoch = time.perf_counter()
        self.root = Span(name, start=self.epoch)
        self.counters: dict[str, int] = {}
        self.phase_seconds: dict[str, float] = {}
        self.phase_calls: dict[str, int] = {}
        self._stack: list[Span] = [self.root]

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of the innermost open span."""
        node = Span(name, start=time.perf_counter(), attrs=attrs)
        parent = self._stack[-1]
        parent.children.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.end = time.perf_counter()
            self._stack.pop()
            self.add_seconds(name, node.end - node.start)

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_seconds(self, name: str, seconds: float) -> None:
        """Credit wall time to a phase aggregate (no span node)."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def close(self) -> None:
        """End the root span (open spans further down are left as-is)."""
        if self.root.end is None:
            self.root.end = time.perf_counter()

    # -- aggregation across processes --------------------------------------

    def summary(self) -> dict:
        """A picklable/JSON-ready aggregate view (no span tree).

        The shape matches the historical ``timing.snapshot()`` payload
        committed in ``BENCH_eval.json``.
        """
        return {
            "phases": {
                name: {
                    "seconds": round(seconds, 6),
                    "calls": self.phase_calls.get(name, 0),
                }
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def merge_summary(self, summary: dict) -> None:
        """Fold another trace's :meth:`summary` into this one.

        This is how the evaluation grid carries worker-side metrics back
        to the parent: the worker's aggregates serialize as a plain dict,
        and the parent merges them into its ambient recorder.
        """
        if not summary:
            return
        for name, value in summary.get("counters", {}).items():
            self.count(name, value)
        for name, entry in summary.get("phases", {}).items():
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + entry.get("seconds", 0.0)
            )
            self.phase_calls[name] = (
                self.phase_calls.get(name, 0) + entry.get("calls", 0)
            )

    # -- export ------------------------------------------------------------

    def to_json(self) -> dict:
        """The full trace — span tree, counters and phase aggregates."""
        self.close()
        return {
            "name": self.name,
            "spans": self.root.to_json(self.epoch),
            **self.summary(),
        }

    def to_chrome_json(self) -> dict:
        """The Chrome ``trace_event`` format (load in ``chrome://tracing``
        or https://ui.perfetto.dev): one complete ('X') event per span,
        counters attached to the root event's args."""
        self.close()
        pid = os.getpid()
        events = []
        for span in self.root.walk():
            event = {
                "name": span.name,
                "ph": "X",
                "ts": round((span.start - self.epoch) * 1e6, 1),
                "dur": round(span.seconds * 1e6, 1),
                "pid": pid,
                "tid": 1,
            }
            if span.attrs:
                event["args"] = {
                    key: value for key, value in span.attrs.items()
                }
            events.append(event)
        if self.counters:
            events[0].setdefault("args", {})["counters"] = dict(
                sorted(self.counters.items())
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str, format: str = "json") -> None:
        """Serialize to ``path`` as ``"json"`` or ``"chrome"``."""
        if format not in ("json", "chrome"):
            raise ValueError(
                f"unknown trace format {format!r}; known: json, chrome"
            )
        payload = self.to_json() if format == "json" else self.to_chrome_json()
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=(format == "json"))
            handle.write("\n")


# -- ambient trace (contextvars) -------------------------------------------

_current: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def current_trace() -> Trace | None:
    """The trace active in this context, or ``None``."""
    return _current.get()


@contextmanager
def tracing(trace: Trace):
    """Activate ``trace`` for the duration of the block (re-entrant:
    the previously active trace, if any, is restored on exit)."""
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)
        trace.close()


@contextmanager
def span(name: str, **attrs):
    """Open a span on the ambient trace; a no-op when tracing is off."""
    trace = _current.get()
    if trace is None:
        yield None
        return
    with trace.span(name, **attrs) as node:
        yield node


def count(name: str, amount: int = 1) -> None:
    """Bump a counter on the ambient trace; a no-op when tracing is off."""
    trace = _current.get()
    if trace is not None:
        trace.count(name, amount)
