"""The compiled target machine: everything the back end needs.

A :class:`TargetMachine` is produced by :func:`repro.cgg.build_target` from
a Maril description.  It bundles the register model, resource table,
instruction descriptors (with selection patterns and executable semantics
metadata), the auxiliary-latency table, glue rules, packing-class elements,
clocks and the calling convention, plus the registered ``*func`` escape
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MarionError
from repro.machine.instruction import InstrDesc
from repro.machine.registers import PhysReg, RegisterModel
from repro.machine.resources import ResourceTable
from repro.maril import ast


@dataclass(frozen=True)
class AuxRule:
    """Compiled ``%aux`` directive: when instruction ``first`` is followed by
    ``second`` and operand ``first_operand`` of the first names the same
    value as operand ``second_operand`` of the second, the edge latency is
    ``latency`` instead of the first instruction's normal latency."""

    first: str
    second: str
    first_operand: int  # 1-based, as written in the description
    second_operand: int
    latency: int


@dataclass
class CallingConvention:
    """The CWVM runtime model (paper section 3.2)."""

    sp: PhysReg = None
    fp: PhysReg = None
    gp: PhysReg | None = None
    retaddr: PhysReg | None = None
    stack_grows_down: bool = True
    hard_registers: dict[PhysReg, int] = field(default_factory=dict)
    general: dict[str, str] = field(default_factory=dict)  # type -> set name
    allocable: list[PhysReg] = field(default_factory=list)
    callee_save: list[PhysReg] = field(default_factory=list)
    # args[type] is the ordered list of argument registers for that type
    args: dict[str, list[PhysReg]] = field(default_factory=dict)
    results: dict[str, PhysReg] = field(default_factory=dict)

    def arg_register(self, type_name: str, index: int) -> PhysReg | None:
        """Register for the ``index``-th (0-based) argument of a type."""
        registers = self.args.get(type_name, [])
        return registers[index] if index < len(registers) else None

    def result_register(self, type_name: str) -> PhysReg | None:
        return self.results.get(type_name)

    def is_callee_save(self, reg: PhysReg) -> bool:
        return reg in self.callee_save

    def caller_save_allocable(self) -> list[PhysReg]:
        return [r for r in self.allocable if r not in self.callee_save]


@dataclass
class TargetMachine:
    """A complete compiled back-end description."""

    name: str
    registers: RegisterModel
    resources: ResourceTable
    instructions: dict[str, InstrDesc] = field(default_factory=dict)
    aux_rules: dict[tuple[str, str], AuxRule] = field(default_factory=dict)
    glue_rules: list[ast.GlueDecl] = field(default_factory=list)
    elements: list[str] = field(default_factory=list)
    clocks: list[str] = field(default_factory=list)
    cwvm: CallingConvention = field(default_factory=CallingConvention)
    memories: dict[str, tuple[int, int]] = field(default_factory=dict)
    # ordered as in the description: selection tries patterns in this order
    pattern_order: list = field(default_factory=list)
    funcs: dict[str, Callable] = field(default_factory=dict)
    description: ast.Description | None = None
    #: artifact-cache identity (sha256 hex) of (variant name, Maril
    #: source), set by :func:`repro.targets.load_target` when the cache
    #: is enabled; downstream keys (executables) chain off it
    content_key: str | None = None

    def instruction(self, mnemonic: str) -> InstrDesc:
        """The first descriptor with this mnemonic (see also
        :meth:`instruction_by_label` for ``[label]``-tagged directives)."""
        try:
            return self.instructions[mnemonic]
        except KeyError:
            raise MarionError(
                f"target {self.name} has no instruction {mnemonic!r}"
            ) from None

    def instruction_by_label(self, label: str) -> InstrDesc:
        for desc in self.instructions.values():
            if desc.label == label:
                return desc
        raise MarionError(f"target {self.name} has no instruction labelled {label!r}")

    @property
    def nop(self) -> InstrDesc:
        return self.instruction("nop")

    def move_for_set(self, set_name: str) -> InstrDesc:
        """The ``%move`` instruction for a register set."""
        for desc in self.instructions.values():
            if not desc.is_move:
                continue
            if not desc.operands:
                continue
            first = desc.operands[0]
            if first.set_name == set_name:
                return desc
        raise MarionError(f"target {self.name} has no %move for set {set_name!r}")

    def aux_latency(self, first: str, second: str) -> AuxRule | None:
        return self.aux_rules.get((first, second))

    def hard_register_for_value(self, value: int, set_name: str) -> PhysReg | None:
        """A register hard-wired to ``value`` in ``set_name``, if any."""
        for reg, wired in self.cwvm.hard_registers.items():
            if wired == value and reg.set_name == set_name:
                return reg
        return None

    def register_func(self, name: str, fn: Callable) -> None:
        """Register the Python escape function for a ``*func`` directive."""
        self.funcs[name] = fn

    def temporal_clock(self, reg_name: str) -> str | None:
        """The clock a temporal register is based on, or None."""
        rset = self.registers.sets.get(reg_name)
        if rset is not None and rset.is_temporal:
            return rset.clock
        return None
