"""Resources and resource vectors (paper sections 3.3 and 4.3).

A resource is a pipeline stage, bus or instruction-word field declared with
``%resource``.  Each instruction carries a *resource vector*: element *i*
describes what the instruction needs on cycle *i* after issue.

Scalar (capacity-1) resources are the common case and stay a single
bitmask, so the hazard check is one ``&`` per cycle.  ``%resource ALU[2];``
declares an *array of identical units* — the extension the paper's section
5 calls out as natural ("introducing arrays of resources would be a
natural extension") for superscalars with multiple identical functional
units.  A pooled resource occupies ``capacity`` consecutive bits of the
same usage word; a request for *k* units succeeds when at least *k* of
those bits are free, and commits by claiming the lowest free ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, NamedTuple, Sequence

from repro.errors import MarionError


class Need(NamedTuple):
    """One cycle's resource requirement."""

    mask: int  # scalar (capacity-1) resources, one bit each
    pools: tuple = ()  # ((first_bit, capacity, count), ...)

    def __bool__(self) -> bool:
        return bool(self.mask or self.pools)


#: A resource vector: element i is the Need on cycle i after issue.
ResourceVector = tuple[Need, ...]

_EMPTY = Need(0, ())


def conflicts(usage: int, need: Need) -> bool:
    """Does ``need`` collide with the committed ``usage`` word?"""
    if usage & need.mask:
        return True
    for first_bit, capacity, count in need.pools:
        busy = (usage >> first_bit) & ((1 << capacity) - 1)
        if busy.bit_count() + count > capacity:
            return True
    return False


def commit(usage: int, need: Need) -> int:
    """Claim ``need`` in ``usage`` (call :func:`conflicts` first)."""
    if not need.pools:
        return usage | need.mask
    usage |= need.mask
    for first_bit, capacity, count in need.pools:
        remaining = count
        for bit in range(capacity):
            if remaining == 0:
                break
            unit = 1 << (first_bit + bit)
            if not usage & unit:
                usage |= unit
                remaining -= 1
        if remaining:
            raise MarionError("resource pool overcommitted (missing conflict check)")
    return usage


@dataclass
class ResourceTable:
    """Maps resource names to bit positions and builds vectors."""

    names: list[str] = field(default_factory=list)
    bits: dict[str, int] = field(default_factory=dict)  # name -> first bit
    capacities: dict[str, int] = field(default_factory=dict)
    _next_bit: int = 0

    def declare(self, name: str, capacity: int = 1) -> int:
        if name in self.bits:
            raise MarionError(f"resource {name!r} declared twice")
        if capacity < 1:
            raise MarionError(f"resource {name!r} needs capacity >= 1")
        self.bits[name] = self._next_bit
        self.capacities[name] = capacity
        self.names.append(name)
        self._next_bit += capacity
        return self.bits[name]

    def need(self, resources: Iterable[str]) -> Need:
        """Build one cycle's Need; repeated pooled names request several
        units of the pool."""
        mask = 0
        pool_counts: dict[str, int] = {}
        for name in resources:
            if name not in self.bits:
                raise MarionError(f"unknown resource {name!r}")
            if self.capacities[name] == 1:
                mask |= 1 << self.bits[name]
            else:
                pool_counts[name] = pool_counts.get(name, 0) + 1
        pools = tuple(
            (self.bits[name], self.capacities[name], count)
            for name, count in pool_counts.items()
        )
        for name, count in pool_counts.items():
            if count > self.capacities[name]:
                raise MarionError(
                    f"cycle requests {count} units of {name!r} "
                    f"(capacity {self.capacities[name]})"
                )
        return Need(mask, pools)

    # kept for compatibility with scalar-only callers/tests
    def mask(self, resources: Iterable[str]) -> int:
        need = self.need(resources)
        if need.pools:
            raise MarionError("mask() cannot express pooled resources")
        return need.mask

    def vector(self, cycles: Sequence[Sequence[str]]) -> ResourceVector:
        return tuple(self.need(cycle) for cycle in cycles)

    def unmask(self, mask: int) -> list[str]:
        out = []
        for name in self.names:
            first_bit = self.bits[name]
            width = self.capacities[name]
            if (mask >> first_bit) & ((1 << width) - 1):
                out.append(name)
        return out

    def conflict_names(self, usage: int, need: Need) -> list[str]:
        """The resources in ``need`` that collide with the committed
        ``usage`` word — the names behind a :func:`conflicts` verdict
        (stall attribution reads these; the hot paths never do)."""
        out = self.unmask(usage & need.mask)
        for first_bit, capacity, count in need.pools:
            busy = (usage >> first_bit) & ((1 << capacity) - 1)
            if busy.bit_count() + count > capacity:
                for name in self.names:
                    if (
                        self.bits[name] == first_bit
                        and self.capacities[name] == capacity
                    ):
                        out.append(name)
                        break
        return out


def scalar_masks(vector: ResourceVector) -> tuple[int, ...] | None:
    """Per-cycle composite masks for a pool-free vector, else ``None``.

    When every cycle of an instruction's resource vector involves only
    scalar (capacity-1) resources, the whole hazard check collapses to one
    ``usage & mask`` per cycle and the commit to one ``usage | mask`` —
    the hot inner loops of the scheduler and the pipeline model predecode
    this once per instruction description.
    """
    if any(need.pools for need in vector):
        return None
    return tuple(need.mask for need in vector)


def vectors_conflict(a: ResourceVector, b: ResourceVector, offset: int = 0) -> bool:
    """True iff vector ``b`` issued ``offset`` cycles after ``a`` collides.

    ``offset`` = 0 means the two instructions issue on the same cycle.
    """
    for i, need_b in enumerate(b):
        j = i + offset
        if 0 <= j < len(a):
            usage = commit(0, a[j])
            if conflicts(usage, need_b):
                return True
    return False


def merge_vectors(a: ResourceVector, b: ResourceVector, offset: int = 0):
    """Committed usage words of ``a`` with ``b`` shifted ``offset`` later."""
    length = max(len(a), offset + len(b))
    out = []
    for j in range(length):
        usage = 0
        if j < len(a):
            usage = commit(usage, a[j])
        i = j - offset
        if 0 <= i < len(b):
            usage = commit(usage, b[i])
        out.append(usage)
    return tuple(out)
