"""Register model with aliasing *units*.

Maril's ``%equiv`` directive says that one register set overlays another
(paper: the TOYP ``d`` doubles overlay the ``r`` integers).  We model this
with 32-bit *units*: every register set belongs to a *register file*, and a
physical register occupies one or more consecutive units of that file.  Two
physical registers interfere iff their unit sets intersect, which makes
register pairs fall out of graph coloring naturally, and lets the simulator
store a double as two 32-bit halves the way the hardware does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MarionError
from repro.maril.sema import TYPE_SIZES

UNIT_BITS = 32


@dataclass(frozen=True)
class PhysReg:
    """One physical register: ``set_name[index]``."""

    set_name: str
    index: int

    def __str__(self) -> str:
        return f"{self.set_name}[{self.index}]"

    def __repr__(self) -> str:
        return f"PhysReg({self})"


@dataclass
class RegisterSet:
    """A register array from a ``%reg`` declaration, after CGG compilation."""

    name: str
    lo: int
    hi: int
    types: tuple[str, ...]
    clock: str | None
    is_temporal: bool
    file_id: int = 0
    units_per_reg: int = 1
    unit_offset: int = 0  # unit index of register `lo` within the file

    @property
    def size_bits(self) -> int:
        if not self.types:
            return UNIT_BITS
        return max(TYPE_SIZES[t] for t in self.types)

    @property
    def count(self) -> int:
        return self.hi - self.lo + 1

    def holds_type(self, type_name: str) -> bool:
        return type_name in self.types

    def registers(self) -> list[PhysReg]:
        return [PhysReg(self.name, i) for i in range(self.lo, self.hi + 1)]


@dataclass
class RegisterModel:
    """All register sets of a target, with the file/unit aliasing map."""

    sets: dict[str, RegisterSet] = field(default_factory=dict)
    file_sizes: dict[int, int] = field(default_factory=dict)  # file_id -> unit count
    #: memoized units_of results (hot path for liveness and simulation)
    _unit_cache: dict = field(default_factory=dict, repr=False)

    def set(self, name: str) -> RegisterSet:
        try:
            return self.sets[name]
        except KeyError:
            raise MarionError(f"unknown register set {name!r}") from None

    def units_of(self, reg: PhysReg) -> tuple[tuple[int, int], ...]:
        """The (file_id, unit_index) pairs a physical register occupies."""
        cached = self._unit_cache.get(reg)
        if cached is not None:
            return cached
        rset = self.set(reg.set_name)
        base = rset.unit_offset + (reg.index - rset.lo) * rset.units_per_reg
        units = tuple((rset.file_id, base + k) for k in range(rset.units_per_reg))
        self._unit_cache[reg] = units
        return units

    def interfere(self, a: PhysReg, b: PhysReg) -> bool:
        """True iff the two physical registers share any unit."""
        if a == b:
            return True
        units_a = self.units_of(a)
        units_b = set(self.units_of(b))
        return any(u in units_b for u in units_a)

    def sets_for_type(self, type_name: str) -> list[RegisterSet]:
        return [
            s
            for s in self.sets.values()
            if s.holds_type(type_name) and not s.is_temporal
        ]

    def temporal_sets(self) -> list[RegisterSet]:
        return [s for s in self.sets.values() if s.is_temporal]
