"""Compiled machine model — the output side of the code generator generator.

A :class:`~repro.machine.target.TargetMachine` is the CGG's compilation of a
Maril description: register model with aliasing units, resource vectors,
instruction descriptors with executable semantics, packing classes, clocks,
and the calling convention.
"""

from repro.machine.registers import PhysReg, RegisterModel, RegisterSet
from repro.machine.resources import ResourceTable, ResourceVector
from repro.machine.instruction import InstrDesc, OperandDesc, OperandMode
from repro.machine.target import CallingConvention, TargetMachine

__all__ = [
    "PhysReg",
    "RegisterModel",
    "RegisterSet",
    "ResourceTable",
    "ResourceVector",
    "InstrDesc",
    "OperandDesc",
    "OperandMode",
    "CallingConvention",
    "TargetMachine",
]
