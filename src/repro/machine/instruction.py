"""Instruction descriptors — the compiled form of ``%instr`` directives.

The CGG analyses each directive's semantics once, recording which operand
positions are written and read, whether the instruction touches memory,
branches, calls or returns, and which temporal registers it reads/writes.
Every later phase (selection, code-DAG construction, scheduling, register
allocation, simulation) consumes this metadata instead of re-walking the
semantic trees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.maril import ast
from repro.machine.resources import ResourceVector, scalar_masks


class OperandMode(enum.Enum):
    REG = "reg"  # any register of a set, e.g. `r`
    FIXED_REG = "fixed"  # one specific register, e.g. `r[0]`
    IMM = "imm"  # immediate in a %def range, e.g. `#const16`
    LABEL = "label"  # branch/call target in a %label range, e.g. `#rlab`


@dataclass(frozen=True)
class OperandDesc:
    """One operand position of an instruction."""

    mode: OperandMode
    set_name: str | None = None  # for REG / FIXED_REG
    reg_index: int | None = None  # for FIXED_REG
    def_name: str | None = None  # for IMM / LABEL
    lo: int = 0  # immediate range (IMM / LABEL)
    hi: int = 0
    absolute: bool = False  # +abs flag: may hold relocatable addresses

    def __str__(self) -> str:
        if self.mode is OperandMode.REG:
            return self.set_name
        if self.mode is OperandMode.FIXED_REG:
            return f"{self.set_name}[{self.reg_index}]"
        return f"#{self.def_name}"

    def accepts_int(self, value: int) -> bool:
        """For IMM operands: is ``value`` representable?"""
        return self.lo <= value <= self.hi


class InstrKind(enum.Enum):
    NORMAL = "normal"
    BRANCH = "branch"  # conditional branch
    JUMP = "jump"  # unconditional goto
    CALL = "call"
    RET = "ret"
    NOP = "nop"


@dataclass
class InstrDesc:
    """A machine instruction as compiled from its Maril directive."""

    mnemonic: str
    operands: tuple[OperandDesc, ...]
    semantics: tuple[ast.Stmt, ...]
    resource_vector: ResourceVector
    cost: int
    latency: int
    slots: int
    type: str | None = None
    clock: str | None = None  # clock this instruction *affects* (EAPs)
    classes: frozenset = frozenset()  # packing-class elements
    label: str | None = None  # the [s.movs] handle
    func: str | None = None  # escape function name for *func directives
    is_move: bool = False

    # semantics-derived metadata (filled by the CGG)
    kind: InstrKind = InstrKind.NORMAL
    def_operands: tuple[int, ...] = ()  # 0-based operand positions written
    use_operands: tuple[int, ...] = ()  # 0-based operand positions read
    label_operands: tuple[int, ...] = ()  # positions holding branch targets
    reads_memory: bool = False
    writes_memory: bool = False
    temporal_reads: tuple[str, ...] = ()  # temporal registers read
    temporal_writes: tuple[str, ...] = ()  # temporal registers written

    # selection patterns compiled from the semantics (set by the CGG)
    patterns: list = field(default_factory=list)

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in self.operands)
        return f"{self.mnemonic} {ops}".rstrip()

    def __repr__(self) -> str:
        return f"InstrDesc({self.mnemonic!r})"

    def vector_fastpath(self) -> tuple[int, ...] | None:
        """Cached :func:`~repro.machine.resources.scalar_masks` of the
        resource vector — the hazard-check fast path for pool-free
        instructions (``None`` when the vector uses resource pools)."""
        try:
            return self._scalar_masks
        except AttributeError:
            masks = scalar_masks(self.resource_vector)
            self._scalar_masks = masks
            return masks

    @property
    def is_control(self) -> bool:
        return self.kind in (
            InstrKind.BRANCH,
            InstrKind.JUMP,
            InstrKind.CALL,
            InstrKind.RET,
        )

    @property
    def affects_clock(self) -> str | None:
        return self.clock


def analyze_semantics(desc: InstrDesc, temporal_names: frozenset) -> None:
    """Fill in the semantics-derived metadata of ``desc`` in place."""
    defs: list[int] = []
    uses: list[int] = []
    labels: list[int] = []
    temporal_reads: list[str] = []
    temporal_writes: list[str] = []
    kind = InstrKind.NORMAL
    reads_memory = writes_memory = False

    def walk_expr(expr: ast.Expr) -> None:
        nonlocal reads_memory
        if isinstance(expr, ast.OperandRef):
            position = expr.index - 1
            if position not in uses:
                uses.append(position)
        elif isinstance(expr, ast.NameRef):
            if expr.name in temporal_names and expr.name not in temporal_reads:
                temporal_reads.append(expr.name)
        elif isinstance(expr, ast.MemRef):
            reads_memory = True
            walk_expr(expr.address)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.BuiltinCall):
            for arg in expr.args:
                walk_expr(arg)

    for stmt in desc.semantics:
        if isinstance(stmt, ast.AssignStmt):
            target = stmt.target
            walk_expr(stmt.value)
            if isinstance(target, ast.OperandRef):
                position = target.index - 1
                if position not in defs:
                    defs.append(position)
            elif isinstance(target, ast.NameRef):
                if target.name in temporal_names and target.name not in temporal_writes:
                    temporal_writes.append(target.name)
            elif isinstance(target, ast.MemRef):
                writes_memory = True
                walk_expr(target.address)
        elif isinstance(stmt, ast.CondGotoStmt):
            kind = InstrKind.BRANCH
            walk_expr(stmt.condition)
            if isinstance(stmt.target, ast.OperandRef):
                labels.append(stmt.target.index - 1)
        elif isinstance(stmt, ast.GotoStmt):
            kind = InstrKind.JUMP
            if isinstance(stmt.target, ast.OperandRef):
                labels.append(stmt.target.index - 1)
            else:
                walk_expr(stmt.target)
        elif isinstance(stmt, ast.CallStmt):
            kind = InstrKind.CALL
            if isinstance(stmt.target, ast.OperandRef):
                labels.append(stmt.target.index - 1)
        elif isinstance(stmt, ast.RetStmt):
            kind = InstrKind.RET

    if not desc.semantics or all(
        isinstance(s, ast.EmptyStmt) for s in desc.semantics
    ):
        kind = InstrKind.NOP

    # a label operand is not a register use
    uses = [u for u in uses if u not in labels]

    desc.kind = kind
    desc.def_operands = tuple(defs)
    desc.use_operands = tuple(uses)
    desc.label_operands = tuple(labels)
    desc.reads_memory = reads_memory
    desc.writes_memory = writes_memory
    desc.temporal_reads = tuple(temporal_reads)
    desc.temporal_writes = tuple(temporal_writes)
