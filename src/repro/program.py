"""Linking: machine programs -> executable images for the simulator.

Lays out the data segment, resolves symbolic immediates (global addresses,
``high``/``low`` relocation halves), flattens functions into one instruction
array with a label map, and re-verifies that every resolved immediate fits
the operand range its instruction declared (the assumptions made for
symbolic values during selection are checked here).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.backend.codegen import MachineProgram
from repro.backend.insts import Imm, Lab, MachineInstr
from repro.backend.values import GpOffset, HighHalf, LowHalf, SlotOffset, SymbolRef
from repro.errors import MarionError
from repro.machine.instruction import OperandMode
from repro.machine.target import TargetMachine

#: Where the data segment starts in simulated memory.
DATA_BASE = 4096

#: The global pointer sits mid-window so gp-relative 16-bit displacements
#: reach 64 KB of data (the MIPS convention).
GP_BIAS = 0x7FF0

_SIZES = {"int": 4, "float": 4, "double": 8}


#: runtime state the simulator hangs off an executable; none of it is
#: part of the program (and some of it — the semantics closures — cannot
#: pickle), so serialization strips it and a fresh process rebuilds or
#: cache-preloads it on first simulation
_TRANSIENT_ATTRS = (
    "_sim_decode",
    "_pipe_static",
    "_segment_jit",
    "_block_timing",
)


@dataclass
class Executable:
    """A linked program the simulator can run."""

    target: TargetMachine
    instrs: list[MachineInstr] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    functions: dict[str, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    #: (address, type, value) triples to install before running
    data_init: list[tuple[int, str, object]] = field(default_factory=list)
    memory_size: int = 1 << 20
    data_end: int = DATA_BASE
    gp_base: int = DATA_BASE + GP_BIAS
    #: artifact-cache identity (sha256 hex) of (target, source, options),
    #: set by ``compile_c`` when the cache is enabled; ``None`` for
    #: executables linked outside the cached path
    content_key: str | None = None

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in _TRANSIENT_ATTRS:
            state.pop(name, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def instruction_count(self) -> int:
        return len(self.instrs)

    def entry(self, function: str) -> int:
        try:
            return self.functions[function]
        except KeyError:
            raise MarionError(f"executable has no function {function!r}") from None

    def initial_memory(self) -> bytearray:
        memory = bytearray(self.memory_size)
        for address, type_name, value in self.data_init:
            if type_name == "double":
                memory[address : address + 8] = struct.pack("<d", float(value))
            elif type_name == "float":
                memory[address : address + 4] = struct.pack("<f", float(value))
            else:
                memory[address : address + 4] = struct.pack(
                    "<i", int(value) & 0xFFFFFFFF if int(value) >= 0 else int(value)
                )
        return memory


def link(program: MachineProgram, memory_size: int = 1 << 20) -> Executable:
    """Lay out and resolve ``program`` into an :class:`Executable`."""
    exe = Executable(target=program.target, memory_size=memory_size)

    # -- data segment: small (gp-addressable) globals first, so they land
    # inside the 64 KB window around gp ------------------------------------
    from repro.backend.lower import GP_SMALL_DATA_THRESHOLD

    ordered = sorted(
        program.globals.items(),
        key=lambda item: item[1].size > GP_SMALL_DATA_THRESHOLD,
    )
    address = DATA_BASE
    for name, var in ordered:
        size = _SIZES[var.type]
        address = (address + size - 1) // size * size
        exe.symbols[name] = address
        if var.initial:
            for position, value in enumerate(var.initial):
                exe.data_init.append((address + position * size, var.type, value))
        address += var.size
    exe.data_end = address
    if address >= memory_size // 2:
        raise MarionError(
            f"data segment ({address} bytes) does not leave room for the stack"
        )

    # -- code --------------------------------------------------------------
    for fn in program.functions:
        exe.functions[fn.name] = len(exe.instrs)
        for block in fn.blocks:
            if block.label in exe.labels:
                raise MarionError(f"duplicate label {block.label!r}")
            exe.labels[block.label] = len(exe.instrs)
            exe.instrs.extend(block.instrs)

    # -- resolve immediates ---------------------------------------------------
    for instr in exe.instrs:
        _resolve_instr(instr, exe)

    # -- verify branch targets ---------------------------------------------------
    for instr in exe.instrs:
        for position in instr.desc.label_operands:
            operand = instr.operands[position]
            if isinstance(operand, Lab) and operand.name not in exe.labels:
                raise MarionError(
                    f"{instr}: branch target {operand.name!r} is undefined"
                )
    return exe


def _resolve_instr(instr: MachineInstr, exe: Executable) -> None:
    for position, operand in enumerate(instr.operands):
        if not isinstance(operand, Imm):
            continue
        value = _resolve_value(operand.value, exe, instr)
        spec = instr.desc.operands[position]
        if spec.mode is OperandMode.IMM and isinstance(value, int):
            if not spec.accepts_int(value) and not spec.absolute:
                raise MarionError(
                    f"{instr}: resolved immediate {value} does not fit "
                    f"#{spec.def_name} [{spec.lo}:{spec.hi}]"
                )
        instr.operands[position] = Imm(value)


def _resolve_value(value: object, exe: Executable, instr: MachineInstr) -> object:
    if isinstance(value, SymbolRef):
        base = exe.symbols.get(value.name)
        if base is None:
            raise MarionError(f"{instr}: undefined symbol {value.name!r}")
        return base + value.addend
    if isinstance(value, SlotOffset):
        if value.slot.offset is None:
            raise MarionError(f"{instr}: unresolved frame slot {value.slot}")
        return value.slot.offset + value.addend
    if isinstance(value, GpOffset):
        base = exe.symbols.get(value.name)
        if base is None:
            raise MarionError(f"{instr}: undefined symbol {value.name!r}")
        displacement = base + value.addend - exe.gp_base
        if not -32768 <= displacement <= 32767:
            raise MarionError(
                f"{instr}: {value.name} is outside the 64 KB gp window "
                f"(displacement {displacement})"
            )
        return displacement
    if isinstance(value, HighHalf):
        base = _resolve_value(value.base, exe, instr)
        return (int(base) >> 16) & 0xFFFF
    if isinstance(value, LowHalf):
        base = _resolve_value(value.base, exe, instr)
        return int(base) & 0xFFFF
    return value
