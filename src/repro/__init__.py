"""Marion — a retargetable instruction scheduling code generator system.

A from-scratch reproduction of Bradlee, Henry & Eggers, *"The Marion System
for Retargetable Instruction Scheduling"*, PLDI 1991.

Quickstart::

    import repro

    target = repro.load_target("r2000")
    exe = repro.compile_c(SOURCE, target, strategy="rase")
    result = repro.simulate(exe, "main", args=(10,))
    print(result.return_value, result.cycles)

The public surface:

* :func:`load_target` — build one of the four bundled targets (TOYP,
  R2000, M88000, i860) from its Maril description;
* :func:`repro.maril.parse_maril` + :func:`repro.cgg.build_target` — build
  a target from your own Maril description (retargeting);
* :func:`compile_c` — C subset -> linked executable, via a chosen code
  generation strategy (``postpass``, ``ips``, ``rase``);
* :func:`simulate` — run a function under the cycle-level pipeline model;
* :mod:`repro.eval` — the harness that regenerates the paper's tables.
"""

import repro.cache as _artifact_cache
from repro.backend.codegen import CodeGenerator, MachineProgram
from repro.cgg import build_target
from repro.errors import (
    GridTimeout,
    JournalError,
    MarionError,
    RequestError,
    SimulationError,
    SimulationTimeout,
)
from repro.frontend import compile_to_il
from repro.machine.target import TargetMachine
import repro.obs as obs
from repro.maril import parse_maril
from repro.obs import Trace, current_trace, tracing
from repro.options import (
    UNSET,
    CompileOptions,
    SimOptions,
    merge_legacy_kwargs,
)
from repro.program import Executable, link
from repro.sim import DirectMappedCache, SimResult, Simulator, run_program
from repro.targets import TARGET_NAMES, clear_target_cache, load_target
from repro.utils import timing

__version__ = "1.1.0"

__all__ = [
    "CodeGenerator",
    "CompileOptions",
    "DirectMappedCache",
    "Executable",
    "GridTimeout",
    "JournalError",
    "MachineProgram",
    "MarionError",
    "RequestError",
    "SimOptions",
    "SimResult",
    "SimulationError",
    "SimulationTimeout",
    "Simulator",
    "TARGET_NAMES",
    "TargetMachine",
    "Trace",
    "build_target",
    "clear_target_cache",
    "compile_c",
    "compile_to_il",
    "current_trace",
    "link",
    "load_target",
    "parse_maril",
    "run_program",
    "simulate",
    "tracing",
    "__version__",
    # evaluation grid + serve (lazy: see __getattr__)
    "Executor",
    "FailureCollector",
    "GridFailure",
    "GridOptions",
    "GridTask",
    "run_grid",
    "ServeOptions",
    "Service",
    "serve_app",
]

#: grid and serve names resolve lazily (PEP 562): importing
#: ``repro.eval`` pulls in the table modules, which import this package
#: back — a module-level import here would deadlock the package init on
#: itself; ``repro.serve`` sits on top of the grid's executor layer and
#: inherits the same cycle
_LAZY_EXPORTS = {
    "run_grid": "repro.eval.grid",
    "GridTask": "repro.eval.grid",
    "GridOptions": "repro.eval.grid",
    "GridFailure": "repro.eval.grid",
    "FailureCollector": "repro.eval.grid",
    "Executor": "repro.eval.executors",
    "ServeOptions": "repro.serve",
    "Service": "repro.serve",
    "serve_app": "repro.serve",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def compile_c(
    source: str,
    target: TargetMachine | str,
    options: CompileOptions | None = None,
    *,
    strategy=UNSET,
    heuristic=UNSET,
    schedule=UNSET,
    fill_delay_slots=UNSET,
    memory_size=UNSET,
) -> Executable:
    """Compile C-subset source text to a linked executable.

    All knobs live on one frozen :class:`CompileOptions` record::

        repro.compile_c(src, "r2000", repro.CompileOptions(strategy="rase"))

    The pre-1.1 keyword spellings (``strategy=``, ``heuristic=``,
    ``schedule=``, ``fill_delay_slots=``, ``memory_size=``) have been
    removed; passing one raises :class:`TypeError` naming the
    replacement.
    """
    options = merge_legacy_kwargs(
        options,
        {
            "strategy": strategy,
            "heuristic": heuristic,
            "schedule": schedule,
            "fill_delay_slots": fill_delay_slots,
            "memory_size": memory_size,
        },
        where="compile_c",
    )
    if isinstance(target, str):
        target = load_target(target)
    timing.add("compile.calls")
    # artifact cache (exe layer): executables are content-addressed by
    # (target identity, source text, options).  Only targets that came
    # through the cached load path carry a content_key — a hand-built
    # TargetMachine compiles uncached, by construction.
    store = _artifact_cache.get_cache()
    exe_key = None
    target_key = getattr(target, "content_key", None)
    if store.enabled and target_key:
        exe_key = store.key("exe", target_key, source, repr(options))
        cached_exe = store.get("exe", exe_key)
        if isinstance(cached_exe, Executable):
            return cached_exe
    timing.add("compile.compiled")
    with obs.span(
        "compile_c", target=target.name, strategy=options.strategy
    ):
        with timing.phase("compile.frontend"), obs.span("frontend"):
            il_program = compile_to_il(source)
        generator = CodeGenerator(target, options)
        with timing.phase("compile.codegen"):
            machine_program = generator.compile_il(il_program)
        with timing.phase("compile.link"), obs.span("link"):
            executable = link(machine_program, memory_size=options.memory_size)
    executable.machine_program = machine_program  # keep stats reachable
    if exe_key is not None:
        executable.content_key = exe_key
        store.put("exe", exe_key, executable)
    return executable


def simulate(
    executable: Executable,
    function: str,
    args: tuple = (),
    arg_types: tuple | None = None,
    options: SimOptions | None = None,
    *,
    cache=UNSET,
    model_timing=UNSET,
    max_instructions=UNSET,
    max_cycles=UNSET,
) -> SimResult:
    """Run one function of a linked executable under the pipeline model.

    All knobs live on one frozen :class:`SimOptions` record::

        repro.simulate(exe, "main", (10,), options=repro.SimOptions(
            cache=True, max_cycles=1_000_000))

    ``SimOptions(max_cycles=...)`` arms the simulator watchdog (the run
    raises :class:`SimulationTimeout` once the cycle count passes the
    budget); ``SimOptions(trace=True)`` attributes every stall cycle to
    a hazard kind in ``SimResult.cycle_breakdown``.  The pre-1.1 keyword
    spellings (``cache=``, ``model_timing=``, ``max_instructions=``,
    ``max_cycles=``) have been removed; passing one raises
    :class:`TypeError` naming the replacement.
    """
    options = merge_legacy_kwargs(
        options,
        {
            "cache": cache,
            "model_timing": model_timing,
            "max_instructions": max_instructions,
            "max_cycles": max_cycles,
        },
        where="simulate",
        factory=SimOptions,
    )
    simulator = Simulator(executable, options)
    return simulator.run(function, args, arg_types=arg_types)
