"""Marion — a retargetable instruction scheduling code generator system.

A from-scratch reproduction of Bradlee, Henry & Eggers, *"The Marion System
for Retargetable Instruction Scheduling"*, PLDI 1991.

Quickstart::

    import repro

    target = repro.load_target("r2000")
    exe = repro.compile_c(SOURCE, target, strategy="rase")
    result = repro.simulate(exe, "main", args=(10,))
    print(result.return_value, result.cycles)

The public surface:

* :func:`load_target` — build one of the four bundled targets (TOYP,
  R2000, M88000, i860) from its Maril description;
* :func:`repro.maril.parse_maril` + :func:`repro.cgg.build_target` — build
  a target from your own Maril description (retargeting);
* :func:`compile_c` — C subset -> linked executable, via a chosen code
  generation strategy (``postpass``, ``ips``, ``rase``);
* :func:`simulate` — run a function under the cycle-level pipeline model;
* :mod:`repro.eval` — the harness that regenerates the paper's tables.
"""

from repro.backend.codegen import CodeGenerator, MachineProgram
from repro.cgg import build_target
from repro.errors import MarionError
from repro.frontend import compile_to_il
from repro.machine.target import TargetMachine
from repro.maril import parse_maril
from repro.program import Executable, link
from repro.sim import DirectMappedCache, SimResult, Simulator, run_program
from repro.targets import TARGET_NAMES, clear_target_cache, load_target
from repro.utils import timing

__version__ = "1.0.0"

__all__ = [
    "CodeGenerator",
    "DirectMappedCache",
    "Executable",
    "MachineProgram",
    "MarionError",
    "SimResult",
    "Simulator",
    "TARGET_NAMES",
    "TargetMachine",
    "build_target",
    "clear_target_cache",
    "compile_c",
    "compile_to_il",
    "link",
    "load_target",
    "parse_maril",
    "run_program",
    "simulate",
    "__version__",
]


def compile_c(
    source: str,
    target: TargetMachine | str,
    strategy: str = "postpass",
    heuristic: str = "maxdist",
    schedule: bool = True,
    fill_delay_slots: bool = False,
    memory_size: int = 1 << 20,
) -> Executable:
    """Compile C-subset source text to a linked executable."""
    if isinstance(target, str):
        target = load_target(target)
    timing.add("compile.calls")
    with timing.phase("compile.frontend"):
        il_program = compile_to_il(source)
    generator = CodeGenerator(
        target,
        strategy=strategy,
        heuristic=heuristic,
        schedule=schedule,
        fill_delay_slots=fill_delay_slots,
    )
    with timing.phase("compile.codegen"):
        machine_program = generator.compile_il(il_program)
    with timing.phase("compile.link"):
        executable = link(machine_program, memory_size=memory_size)
    executable.machine_program = machine_program  # keep stats reachable
    return executable


def simulate(
    executable: Executable,
    function: str,
    args: tuple = (),
    arg_types: tuple | None = None,
    cache: DirectMappedCache | None = None,
    model_timing: bool = True,
    max_instructions: int = 50_000_000,
) -> SimResult:
    """Run one function of a linked executable under the pipeline model."""
    simulator = Simulator(executable, cache=cache, model_timing=model_timing)
    return simulator.run(
        function, args, arg_types=arg_types, max_instructions=max_instructions
    )
