"""The work units a service request becomes.

Module-level callables with picklable arguments and JSON-ready results,
so every executor backend can run them: the local pool pickles the
callable itself, the socket backend ships them *by name*
(``repro.serve.workers:compile_unit``) and warm remote workers pull
targets and executables from the persistent artifact cache.

Each unit reports compile provenance — how many *fresh* kernel compiles
and CGG builds it caused — by snapshotting the :mod:`repro.utils.timing`
counters around the work.  On a warm artifact cache both deltas are 0;
``/v1/stats`` and the CI serve smoke assert exactly that.
"""

from __future__ import annotations

from repro.options import CompileOptions, SimOptions
from repro.utils import timing


def _compile(source: str, target: str, options: CompileOptions):
    import repro

    before = (
        timing.counter("compile.compiled"),
        timing.counter("cgg.builds"),
    )
    executable = repro.compile_c(source, target, options)
    after = (
        timing.counter("compile.compiled"),
        timing.counter("cgg.builds"),
    )
    return executable, after[0] - before[0], after[1] - before[1]


def compile_unit(source: str, target: str, options: CompileOptions) -> dict:
    """``POST /v1/compile``: source -> scheduled assembly listing."""
    from repro.backend.asmprinter import format_program

    executable, compiled, cgg_builds = _compile(source, target, options)
    program = executable.machine_program
    return {
        "target": target,
        "strategy": options.strategy,
        "assembly": format_program(program),
        "functions": [fn.name for fn in program.functions],
        "instructions": executable.instruction_count(),
        "compiled": compiled,
        "cgg_builds": cgg_builds,
    }


def explain_unit(source: str, target: str, options: CompileOptions) -> dict:
    """``POST /v1/explain``: the issue-cycle annotated listing plus the
    scheduler's per-function stall-reason tallies."""
    from repro.backend.asmprinter import format_program

    executable, compiled, cgg_builds = _compile(source, target, options)
    program = executable.machine_program
    functions = {
        name: {
            "nop_slots": stats.nop_slots,
            "stall_reasons": dict(stats.stall_reasons),
        }
        for name, stats in sorted(program.stats.items())
    }
    return {
        "target": target,
        "strategy": options.strategy,
        "listing": format_program(program, explain=True),
        "functions": functions,
        "compiled": compiled,
        "cgg_builds": cgg_builds,
    }


def run_unit(
    source: str,
    target: str,
    options: CompileOptions,
    entry: str,
    args: tuple,
    sim: SimOptions,
) -> dict:
    """``POST /v1/run``: compile, link and simulate one function."""
    import repro

    executable, compiled, cgg_builds = _compile(source, target, options)
    result = repro.simulate(executable, entry, tuple(args), options=sim)
    return {
        "target": target,
        "strategy": options.strategy,
        "entry": entry,
        "result": result.return_value,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "loads": result.loads,
        "stores": result.stores,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "cycle_breakdown": (
            dict(result.cycle_breakdown)
            if result.cycle_breakdown is not None
            else None
        ),
        "compiled": compiled,
        "cgg_builds": cgg_builds,
    }
