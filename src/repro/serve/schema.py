"""The versioned request API for ``repro serve``.

Every request and response is a frozen record with an explicit JSON
codec — the wire format is a contract, not a pickled implementation
detail.  ``API_VERSION`` names the current contract; it appears in the
URL (``/v1/...``), may ride in request bodies as ``"api"``, and is
echoed in every response.  A request carrying an unknown version is
rejected with the ``unsupported_version`` taxonomy code *before* any
field is interpreted, so old clients fail loudly instead of subtly.

The options sub-documents (``"options"`` for compile, ``"sim"`` for
simulation) mirror :class:`~repro.options.CompileOptions` and
:class:`~repro.options.SimOptions` field for field.
:func:`compile_options_from_json` / :func:`sim_options_from_json` are
the *only* parsers for those documents — the CLI's ``--options-json``
flag routes through the same two functions, so the HTTP API and the
command line cannot drift apart.

Failures surface as :class:`repro.errors.RequestError` (code
``bad_request`` / ``unsupported_version`` / ...) and are rendered by
:func:`error_body` into the structured error payload every endpoint
shares; :func:`status_for` maps the :mod:`repro.errors` taxonomy onto
HTTP status codes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import RequestError, error_payload
from repro.options import CompileOptions, SimOptions

#: the current request-API contract.  Bump when a request or response
#: field changes meaning or disappears; additive response fields do not
#: require a bump (clients must ignore unknown response fields).
API_VERSION = 1

#: ``compile`` / ``run`` / ``explain`` — the POST endpoints
KINDS = ("compile", "run", "explain")

#: options-document fields, name -> accepted JSON types.  ``None`` in a
#: document always means "server default".
_COMPILE_FIELDS: dict[str, tuple] = {
    "strategy": (str,),
    "heuristic": (str,),
    "schedule": (bool,),
    "fill_delay_slots": (bool,),
    "memory_size": (int,),
}
_SIM_FIELDS: dict[str, tuple] = {
    "cache": (bool,),
    "model_timing": (bool,),
    "max_instructions": (int,),
    "max_cycles": (int,),
    "trace": (bool,),
    "fast_timing": (bool,),
    "jit": (bool,),
    "superblock": (bool,),
    "timing_chain": (bool,),
}


def _require_mapping(doc, what: str) -> dict:
    if doc is None:
        return {}
    if not isinstance(doc, dict):
        raise RequestError(
            f"{what} must be a JSON object, got {type(doc).__name__}",
            details={"field": what},
        )
    return doc


def _options_from_json(doc, fields: dict, factory, what: str):
    """Validate an options document against ``fields`` and build the
    record, translating any constructor rejection (unknown strategy,
    bad heuristic) into a ``bad_request`` taxonomy error."""
    doc = _require_mapping(doc, what)
    unknown = sorted(set(doc) - set(fields))
    if unknown:
        raise RequestError(
            f"unknown {what} field(s): {', '.join(unknown)}",
            details={"unknown": unknown, "known": sorted(fields)},
        )
    kwargs = {}
    for name, value in doc.items():
        if value is None:
            continue  # explicit null = server default
        types = fields[name]
        # bool is an int subclass — an int field must not accept true
        if isinstance(value, bool) and bool not in types:
            raise RequestError(
                f"{what}.{name} must be {types[0].__name__}, got bool",
                details={"field": f"{what}.{name}"},
            )
        if not isinstance(value, types):
            raise RequestError(
                f"{what}.{name} must be {types[0].__name__}, "
                f"got {type(value).__name__}",
                details={"field": f"{what}.{name}"},
            )
        kwargs[name] = value
    try:
        return factory(**kwargs)
    except Exception as exc:
        raise RequestError(
            str(exc), details={"field": what}
        ) from exc


def compile_options_from_json(doc) -> CompileOptions:
    """``{"strategy": "ips", "schedule": true, ...}`` ->
    :class:`CompileOptions`.  The single validation path shared by
    ``POST /v1/compile|run|explain`` and the CLI's ``--options-json``."""
    return _options_from_json(
        doc, _COMPILE_FIELDS, CompileOptions, "options"
    )


def sim_options_from_json(doc) -> SimOptions:
    """``{"cache": true, "max_cycles": 1000000, ...}`` ->
    :class:`SimOptions`.  ``cache`` is a boolean on the wire (a service
    cannot accept live cache instances)."""
    return _options_from_json(doc, _SIM_FIELDS, SimOptions, "sim")


def compile_options_to_json(options: CompileOptions) -> dict:
    """The document :func:`compile_options_from_json` parses."""
    return {name: getattr(options, name) for name in _COMPILE_FIELDS}


def sim_options_to_json(options: SimOptions) -> dict:
    """The document :func:`sim_options_from_json` parses.  A live cache
    instance flattens to ``true`` (the wire format is a boolean)."""
    doc = {name: getattr(options, name) for name in _SIM_FIELDS}
    doc["cache"] = bool(doc["cache"])
    return doc


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class CompileRequest:
    """``POST /v1/compile`` — C source -> scheduled assembly."""

    source: str
    target: str = "r2000"
    options: CompileOptions = CompileOptions()
    timeout_s: float | None = None


@dataclass(frozen=True)
class ExplainRequest:
    """``POST /v1/explain`` — compile, then annotate the listing with
    issue cycles and per-function stall-reason tallies."""

    source: str
    target: str = "r2000"
    options: CompileOptions = CompileOptions()
    timeout_s: float | None = None


@dataclass(frozen=True)
class RunRequest:
    """``POST /v1/run`` — compile, link and simulate one function."""

    source: str
    entry: str
    target: str = "r2000"
    args: tuple = ()
    options: CompileOptions = CompileOptions()
    sim: SimOptions = SimOptions()
    timeout_s: float | None = None


_TOP_FIELDS = {
    "compile": ("api", "source", "target", "options", "timeout_s"),
    "explain": ("api", "source", "target", "options", "timeout_s"),
    "run": (
        "api",
        "source",
        "entry",
        "args",
        "target",
        "options",
        "sim",
        "timeout_s",
    ),
}


def check_api_version(doc: dict) -> None:
    """Reject any explicit ``"api"`` other than :data:`API_VERSION`."""
    version = doc.get("api", API_VERSION)
    if version != API_VERSION:
        raise RequestError(
            f"unsupported API version {version!r}",
            code="unsupported_version",
            details={"requested": version, "supported": [API_VERSION]},
        )


def parse_request(kind: str, doc) -> CompileRequest | RunRequest | ExplainRequest:
    """One request document -> one frozen request record.

    Raises :class:`RequestError` (``unsupported_version`` for a version
    mismatch, ``bad_request`` for everything else) with field-level
    details; never returns a partially-valid record.
    """
    if kind not in KINDS:
        raise RequestError(f"unknown request kind {kind!r}")
    doc = _require_mapping(doc, "request")
    check_api_version(doc)
    allowed = _TOP_FIELDS[kind]
    unknown = sorted(set(doc) - set(allowed))
    if unknown:
        raise RequestError(
            f"unknown request field(s): {', '.join(unknown)}",
            details={"unknown": unknown, "known": sorted(allowed)},
        )

    source = doc.get("source")
    if not isinstance(source, str) or not source.strip():
        raise RequestError(
            "source must be a non-empty string of C-subset code",
            details={"field": "source"},
        )
    target = doc.get("target", "r2000")
    if not isinstance(target, str):
        raise RequestError(
            f"target must be a string, got {type(target).__name__}",
            details={"field": "target"},
        )
    from repro.targets import TARGET_NAMES

    if target not in TARGET_NAMES:
        raise RequestError(
            f"unknown target {target!r}",
            details={"field": "target", "known": list(TARGET_NAMES)},
        )
    options = compile_options_from_json(doc.get("options"))
    timeout_s = doc.get("timeout_s")
    if timeout_s is not None:
        if isinstance(timeout_s, bool) or not isinstance(
            timeout_s, (int, float)
        ):
            raise RequestError(
                "timeout_s must be a number of seconds",
                details={"field": "timeout_s"},
            )
        if timeout_s <= 0:
            raise RequestError(
                "timeout_s must be positive",
                details={"field": "timeout_s"},
            )
        timeout_s = float(timeout_s)

    if kind in ("compile", "explain"):
        cls = CompileRequest if kind == "compile" else ExplainRequest
        return cls(
            source=source,
            target=target,
            options=options,
            timeout_s=timeout_s,
        )

    entry = doc.get("entry")
    if not isinstance(entry, str) or not entry:
        raise RequestError(
            "entry must name the function to run",
            details={"field": "entry"},
        )
    raw_args = doc.get("args", [])
    if not isinstance(raw_args, list):
        raise RequestError(
            "args must be a JSON array of numbers",
            details={"field": "args"},
        )
    args = []
    for position, value in enumerate(raw_args):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError(
                f"args[{position}] must be a number, "
                f"got {type(value).__name__}",
                details={"field": f"args[{position}]"},
            )
        args.append(value)
    sim = sim_options_from_json(doc.get("sim"))
    return RunRequest(
        source=source,
        entry=entry,
        target=target,
        args=tuple(args),
        options=options,
        sim=sim,
        timeout_s=timeout_s,
    )


def request_key(kind: str, request) -> str:
    """The coalescing identity of a request: sha256 over everything that
    shapes its *value* — and nothing that does not (``timeout_s`` is
    excluded on purpose, so two callers with different patience share
    one compile)."""
    digest = hashlib.sha256()
    parts = [f"api{API_VERSION}", kind, request.target, request.source,
             repr(request.options)]
    if isinstance(request, RunRequest):
        parts += [request.entry, repr(request.args), repr(request.sim)]
    for part in parts:
        data = part.encode()
        digest.update(b"\x00%d\x00" % len(data))
        digest.update(data)
    return digest.hexdigest()


# -- responses --------------------------------------------------------------


@dataclass(frozen=True)
class CompileResponse:
    """``POST /v1/compile`` result: the scheduled listing plus compile
    provenance (``compiled`` / ``cgg_builds`` count *fresh* work this
    request caused — both 0 on an artifact-cache hit)."""

    key: str
    target: str
    strategy: str
    assembly: str
    functions: tuple
    instructions: int
    compiled: int
    cgg_builds: int
    api: int = API_VERSION

    def to_json(self) -> dict:
        return {
            "api": self.api,
            "key": self.key,
            "target": self.target,
            "strategy": self.strategy,
            "assembly": self.assembly,
            "functions": list(self.functions),
            "instructions": self.instructions,
            "compiled": self.compiled,
            "cgg_builds": self.cgg_builds,
        }


@dataclass(frozen=True)
class RunResponse:
    """``POST /v1/run`` result: the simulated execution."""

    key: str
    target: str
    strategy: str
    entry: str
    result: dict
    cycles: int
    instructions: int
    loads: int
    stores: int
    cache_hits: int
    cache_misses: int
    cycle_breakdown: dict | None
    compiled: int
    cgg_builds: int
    api: int = API_VERSION

    def to_json(self) -> dict:
        return {
            "api": self.api,
            "key": self.key,
            "target": self.target,
            "strategy": self.strategy,
            "entry": self.entry,
            "result": self.result,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cycle_breakdown": self.cycle_breakdown,
            "compiled": self.compiled,
            "cgg_builds": self.cgg_builds,
        }


@dataclass(frozen=True)
class ExplainResponse:
    """``POST /v1/explain`` result: the issue-cycle annotated listing
    plus per-function stall-reason tallies (conserved against
    ``nop_slots``, see the stall taxonomy in ``docs/internals.md``)."""

    key: str
    target: str
    strategy: str
    listing: str
    functions: dict
    api: int = API_VERSION

    def to_json(self) -> dict:
        return {
            "api": self.api,
            "key": self.key,
            "target": self.target,
            "strategy": self.strategy,
            "listing": self.listing,
            "functions": self.functions,
        }


# -- errors -----------------------------------------------------------------

#: taxonomy type -> HTTP status.  Anything unlisted: MarionError
#: subclasses are the *request's* fault (unprocessable source), other
#: exceptions are the server's.
_STATUS_BY_TYPE = {
    "RequestError": 400,
    "GridTimeout": 504,
    "SimulationTimeout": 504,
    "WorkerCrash": 500,
}


def status_for(payload: dict) -> int:
    """HTTP status for an :func:`repro.errors.error_payload` dict."""
    status = _STATUS_BY_TYPE.get(payload.get("type"))
    if status is not None:
        return status
    return 422 if payload.get("marion") else 500


def error_body(payload: dict) -> dict:
    """The structured error document every endpoint returns.

    ``code`` is stable and machine-readable (:class:`RequestError`
    carries its own; taxonomy errors use their type name), ``type`` /
    ``message`` / ``details`` come straight from the
    :func:`repro.errors.error_payload` flattening.
    """
    details = dict(payload.get("details", {}))
    code = details.pop("code", None) or payload.get("type", "error")
    return {
        "api": API_VERSION,
        "error": {
            "code": code,
            "type": payload.get("type", "Exception"),
            "message": payload.get("message", ""),
            "details": details,
        },
    }


def error_body_from_exception(exc: BaseException) -> tuple[int, dict]:
    """``(status, body)`` for a locally raised exception."""
    payload = error_payload(exc)
    return status_for(payload), error_body(payload)
