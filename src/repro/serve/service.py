"""The serve engine: executor-backed dispatch with coalescing and
deadlines.

One :class:`Service` owns

* an :class:`~repro.eval.executors.base.Executor` — the *warm worker
  pool*.  The default local pool forks from a parent that has already
  warmed its target cache and keeps its workers alive across requests,
  so request N+1 never pays the cold-start tax request N already paid;
  any backend spec the evaluation grid accepts works here too
  (``inprocess``, ``local``, ``socket[:HOST:PORT]``);
* a drain thread that streams completion events off the executor and
  resolves per-request futures on the event loop;
* the **in-flight dedup map**: identical requests (same
  :func:`~repro.serve.schema.request_key`) arriving while a compile is
  running coalesce onto one future — K concurrent identical requests
  cause exactly one compile;
* a bounded **response memo** for completed requests: the service is
  deterministic, so a finished response can be replayed byte-for-byte
  without touching a worker;
* per-request **deadlines**: the worker arms the grid's ``SIGALRM``
  unit deadline, and the event loop holds an ``asyncio.wait_for``
  backstop — either way the caller gets a structured 504 carrying the
  :class:`~repro.errors.GridTimeout` taxonomy payload;
* graceful drain: SIGTERM/SIGINT stops the listener, lets in-flight
  requests finish (bounded by ``drain_grace``), then closes the
  executor.

Counters flow through :mod:`repro.utils.timing` (``serve.*``, plus the
``compile.*``/``cgg.*``/``cache.*`` counters merged back from worker
metrics), so ``/v1/stats`` and the BENCH ``serve`` section read the
same numbers the rest of the harness does.
"""

from __future__ import annotations

import asyncio
import collections
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.errors import GridTimeout, error_payload
from repro.eval.executors import Executor, resolve_executor, resolve_jobs
from repro.eval.grid import GridTask
from repro.serve import schema, workers
from repro.serve.schema import (
    CompileRequest,
    CompileResponse,
    ExplainRequest,
    ExplainResponse,
    RunRequest,
    RunResponse,
    request_key,
)
from repro.utils import timing

#: endpoints whose latency the stats ring tracks
_TIMED = ("compile", "run", "explain")


@dataclass(frozen=True)
class ServeOptions:
    """Everything that shapes one service process, in one frozen record.

    * ``host``/``port`` — listen address (``port=0`` picks a free port,
      printed on startup);
    * ``workers`` — worker-pool size (``None``: ``REPRO_JOBS`` or cpu
      count);
    * ``executor`` — backend spec (``"local"`` default, ``"inprocess"``,
      ``"socket"``, ``"socket:HOST:PORT"``) or a live
      :class:`~repro.eval.executors.base.Executor` to reuse (left open
      on shutdown);
    * ``request_timeout`` — default per-request deadline in seconds; a
      request's own ``timeout_s`` may only *tighten* it;
    * ``warm`` — target names to build before the first request (the
      forked pool inherits the warm caches);
    * ``memo_size`` — completed-response memo entries (0 disables);
    * ``max_body_bytes`` — request-body cap (HTTP 413 beyond it);
    * ``drain_grace`` — seconds to let in-flight requests finish on
      SIGTERM before the executor is closed.
    """

    host: str = "127.0.0.1"
    port: int = 8177
    workers: int | None = None
    executor: str | Executor | None = None
    request_timeout: float = 60.0
    warm: tuple = ()
    memo_size: int = 256
    max_body_bytes: int = 4 << 20
    drain_grace: float = 10.0


@dataclass
class _Pending:
    """One in-flight request key: the future its waiters share."""

    future: asyncio.Future
    waiters: int = 1
    started: float = field(default_factory=time.monotonic)


class Service:
    """The compile-and-simulate service (see the module doc)."""

    def __init__(self, options: ServeOptions | None = None):
        self.options = options if options is not None else ServeOptions()
        self._executor: Executor | None = None
        self._owns_executor = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pending: dict[str, _Pending] = {}
        self._memo: collections.OrderedDict[str, dict] = (
            collections.OrderedDict()
        )
        self._latency: dict[str, collections.deque] = {
            kind: collections.deque(maxlen=2048) for kind in _TIMED
        }
        self._requests: collections.Counter = collections.Counter()
        self._responses: collections.Counter = collections.Counter()
        self._dedup_hits = 0
        self._memo_hits = 0
        self._timeouts = 0
        self._started_at = time.monotonic()
        self._draining = False
        self._stop_event: asyncio.Event | None = None
        self._drainer: threading.Thread | None = None
        self._drainer_stop = threading.Event()
        self._work = threading.Event()
        self.port: int | None = None

    # -- lifecycle ---------------------------------------------------------

    def _resolve_executor(self) -> None:
        spec = self.options.executor
        if isinstance(spec, Executor):
            self._executor, self._owns_executor = spec, False
            return
        if spec is None:
            spec = "local"
        self._executor = resolve_executor(
            spec, resolve_jobs(self.options.workers)
        )
        self._owns_executor = True

    def _warm(self) -> None:
        """Build the named targets *before* the pool forks, so workers
        inherit a warm in-process target cache."""
        from repro.targets import load_target

        for name in self.options.warm:
            load_target(name)

    async def start(self) -> None:
        """Bind the listener and start the event drain; idempotent port
        resolution — ``self.port`` holds the real port after this."""
        from repro.serve.http import handle_connection

        timing.enable()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._warm()
        self._resolve_executor()
        self._drainer_stop.clear()
        self._drainer = threading.Thread(
            target=self._drain_events, name="serve-drain", daemon=True
        )
        self._drainer.start()
        self._server = await asyncio.start_server(
            lambda reader, writer: handle_connection(self, reader, writer),
            host=self.options.host,
            port=self.options.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful drain: stop accepting, let in-flight work finish
        (bounded), then release the drainer and the executor."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.options.drain_grace
        while self._pending and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        self._drainer_stop.set()
        self._work.set()
        if self._drainer is not None:
            self._drainer.join(timeout=2.0)
        if self._executor is not None and self._owns_executor:
            self._executor.close()

    def request_stop(self) -> None:
        """Signal-safe shutdown trigger (SIGTERM/SIGINT handler)."""
        self._draining = True
        if self._stop_event is not None:
            self._stop_event.set()

    def run(self) -> int:
        """Serve until SIGTERM/SIGINT; the CLI entry point."""
        return asyncio.run(self._main())

    async def _main(self) -> int:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError):
                pass
        await self.start()
        backend = self._executor.backend if self._executor else "?"
        print(
            f"repro serve: listening on http://{self.options.host}:"
            f"{self.port} (api v{schema.API_VERSION}, "
            f"executor {backend})",
            flush=True,
        )
        await self._stop_event.wait()
        print("repro serve: draining...", flush=True)
        await self.stop()
        print("repro serve: stopped", flush=True)
        return 0

    # -- event drain -------------------------------------------------------

    def _drain_events(self) -> None:
        """Drain-thread body: stream executor completion events onto the
        event loop.  The in-process backend runs units *inside*
        ``next_event``, so with ``executor="inprocess"`` this thread is
        also where the work happens."""
        while not self._drainer_stop.is_set():
            executor = self._executor
            if executor is None:
                return
            try:
                event = executor.next_event(timeout=0.1)
            except Exception:
                time.sleep(0.05)
                continue
            if event is None:
                # serial backends return immediately when idle: block on
                # the submit signal instead of spinning
                self._work.wait(timeout=0.1)
                self._work.clear()
                continue
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(self._resolve_event, event)

    def _resolve_event(self, event) -> None:
        if event.metrics is not None:
            timing.merge(event.metrics)
        entry = self._pending.pop(event.key, None)
        if entry is None:
            return  # stale: every waiter timed out and re-keyed
        if not entry.future.done():
            entry.future.set_result(event)

    # -- dispatch ----------------------------------------------------------

    def _deadline(self, requested: float | None) -> float:
        limit = self.options.request_timeout
        if requested is None:
            return limit
        return min(requested, limit)

    def _memo_get(self, key: str) -> dict | None:
        body = self._memo.get(key)
        if body is not None:
            self._memo.move_to_end(key)
        return body

    def _memo_put(self, key: str, body: dict) -> None:
        if self.options.memo_size <= 0:
            return
        self._memo[key] = body
        self._memo.move_to_end(key)
        while len(self._memo) > self.options.memo_size:
            self._memo.popitem(last=False)

    async def _execute(self, kind: str, key: str, fn, args, timeout_s):
        """Coalesce onto an in-flight future or submit a fresh unit;
        return the completion :class:`UnitEvent`."""
        entry = self._pending.get(key)
        if entry is not None:
            entry.waiters += 1
            self._dedup_hits += 1
            timing.add("serve.dedup_hits")
        else:
            entry = _Pending(self._loop.create_future())
            self._pending[key] = entry
            task = GridTask(key, fn, tuple(args))
            self._executor.submit(task, timeout_s)
            self._work.set()
        try:
            return await asyncio.wait_for(
                asyncio.shield(entry.future), timeout_s
            )
        except asyncio.TimeoutError:
            entry.waiters -= 1
            if entry.waiters <= 0 and self._pending.get(key) is entry:
                # last waiter gone: drop the key so new arrivals submit
                # fresh work, and drop any queued copy of this one
                del self._pending[key]
                self._executor.cancel(key)
            self._timeouts += 1
            timing.add("serve.timeouts")
            raise GridTimeout(
                f"request exceeded its {timeout_s:g}s deadline",
                seconds=timeout_s,
            ) from None

    async def handle(self, kind: str, doc) -> tuple[int, dict]:
        """One parsed POST body -> ``(status, response document)``."""
        self._requests[kind] += 1
        timing.add(f"serve.requests.{kind}")
        watch = timing.stopwatch()
        try:
            request = schema.parse_request(kind, doc)
            key = request_key(kind, request)
            memo = self._memo_get(key)
            if memo is not None:
                self._memo_hits += 1
                timing.add("serve.memo_hits")
                body = dict(memo)
                body["served"] = "memo"
                body["wall_ms"] = round(watch.seconds * 1000, 3)
                return self._done(kind, 200, body, watch)
            fn, args = _unit_for(kind, request)
            timeout_s = self._deadline(request.timeout_s)
            event = await self._execute(kind, key, fn, args, timeout_s)
            if not event.ok:
                status = schema.status_for(event.value)
                return self._done(
                    kind, status, schema.error_body(event.value), watch
                )
            body = _response_for(kind, key, event.value).to_json()
            self._memo_put(key, body)
            body = dict(body)
            body["served"] = "executor"
            body["wall_ms"] = round(watch.seconds * 1000, 3)
            return self._done(kind, 200, body, watch)
        except Exception as exc:  # noqa: BLE001 — every error is a payload
            status, body = schema.error_body_from_exception(exc)
            return self._done(kind, status, body, watch)

    def _done(self, kind, status, body, watch) -> tuple[int, dict]:
        if kind in self._latency:
            self._latency[kind].append(watch.seconds * 1000)
        self._responses[f"{status // 100}xx"] += 1
        if status >= 400:
            timing.add("serve.errors")
        return status, body

    # -- read-only endpoints ----------------------------------------------

    def healthz(self) -> tuple[int, dict]:
        self._requests["healthz"] += 1
        status = 503 if self._draining else 200
        return status, {
            "api": schema.API_VERSION,
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    def targets(self) -> tuple[int, dict]:
        from repro.eval.table1 import description_stats
        from repro.targets import TARGET_NAMES

        self._requests["targets"] += 1
        listing = []
        for name in TARGET_NAMES:
            stats = description_stats(name)
            listing.append(
                {
                    "name": name,
                    "instructions": stats.instructions,
                    "clocks": stats.clocks,
                    "class_elements": stats.elements,
                    "glue_transformations": stats.glue_transformations,
                    "funcs": stats.funcs,
                }
            )
        return 200, {"api": schema.API_VERSION, "targets": listing}

    def stats(self) -> tuple[int, dict]:
        from repro.cache import get_cache

        self._requests["stats"] += 1
        store = get_cache()
        probe = self._executor.probe() if self._executor else None
        return 200, {
            "api": schema.API_VERSION,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "draining": self._draining,
            "requests": dict(self._requests),
            "responses": dict(self._responses),
            "in_flight": len(self._pending),
            "dedup": {
                "inflight_hits": self._dedup_hits,
                "memo_hits": self._memo_hits,
                "memo_entries": len(self._memo),
            },
            "timeouts": self._timeouts,
            "compile": {
                "calls": timing.counter("compile.calls"),
                "compiled": timing.counter("compile.compiled"),
                "cgg_builds": timing.counter("cgg.builds"),
            },
            "sim": {
                "jit": {
                    "segments": timing.counter("sim.jit.segments"),
                    "active_segments": timing.counter(
                        "sim.jit.active_segments"
                    ),
                    "hits": timing.counter("sim.jit.hit"),
                    "deopts": timing.counter("sim.jit.deopt"),
                },
                "timing": {
                    "digests_computed": timing.counter(
                        "sim.timing.digests_computed"
                    ),
                    "memo_hits": timing.counter("sim.block_cache.hit"),
                    "memo_misses": timing.counter("sim.block_cache.miss"),
                },
                "superblock": {
                    "traces": timing.counter("sim.jit.superblocks"),
                    "side_exits": timing.counter("sim.jit.side_exits"),
                    "demoted": timing.counter("sim.jit.sb_demoted"),
                    "preloaded_segments": timing.counter(
                        "sim.jit.preloaded"
                    ),
                    "preloaded_traces": timing.counter(
                        "sim.jit.sb_preloaded"
                    ),
                },
            },
            "artifact_cache": {
                "enabled": store.enabled,
                "root": str(store.root),
                "hits": timing.counter("cache.hit"),
                "misses": timing.counter("cache.miss"),
                "writes": timing.counter("cache.write"),
            },
            "executor": (
                {
                    "backend": probe.backend,
                    "workers": probe.workers,
                    "idle": probe.idle,
                    "queued": probe.queued,
                    "in_flight": probe.in_flight,
                    "healthy": probe.healthy,
                }
                if probe is not None
                else None
            ),
            "latency_ms": {
                kind: _percentiles(samples)
                for kind, samples in self._latency.items()
            },
        }


def _unit_for(kind: str, request):
    if isinstance(request, RunRequest):
        return workers.run_unit, (
            request.source,
            request.target,
            request.options,
            request.entry,
            request.args,
            request.sim,
        )
    fn = (
        workers.compile_unit
        if isinstance(request, CompileRequest)
        else workers.explain_unit
    )
    return fn, (request.source, request.target, request.options)


def _response_for(kind: str, key: str, value: dict):
    if kind == "compile":
        return CompileResponse(
            key=key,
            target=value["target"],
            strategy=value["strategy"],
            assembly=value["assembly"],
            functions=tuple(value["functions"]),
            instructions=value["instructions"],
            compiled=value["compiled"],
            cgg_builds=value["cgg_builds"],
        )
    if kind == "explain":
        return ExplainResponse(
            key=key,
            target=value["target"],
            strategy=value["strategy"],
            listing=value["listing"],
            functions=value["functions"],
        )
    return RunResponse(
        key=key,
        target=value["target"],
        strategy=value["strategy"],
        entry=value["entry"],
        result=value["result"],
        cycles=value["cycles"],
        instructions=value["instructions"],
        loads=value["loads"],
        stores=value["stores"],
        cache_hits=value["cache_hits"],
        cache_misses=value["cache_misses"],
        cycle_breakdown=value["cycle_breakdown"],
        compiled=value["compiled"],
        cgg_builds=value["cgg_builds"],
    )


def _percentiles(samples) -> dict | None:
    if not samples:
        return None
    ranked = sorted(samples)
    last = len(ranked) - 1

    def pick(q: float) -> float:
        return round(ranked[min(last, int(len(ranked) * q))], 3)

    return {
        "count": len(ranked),
        "p50": pick(0.50),
        "p90": pick(0.90),
        "p99": pick(0.99),
        "max": round(ranked[last], 3),
    }
