"""The asyncio HTTP/1.1 front end for ``repro serve``.

A deliberately small server — stdlib only, HTTP/1.1 with keep-alive,
JSON bodies in and out — because the interesting machinery (coalescing,
deadlines, the worker pool) lives in :mod:`repro.serve.service` and the
contract lives in :mod:`repro.serve.schema`.  Routes:

========  ==================  ==========================================
method    path                handler
========  ==================  ==========================================
POST      ``/v1/compile``     :meth:`Service.handle` (kind ``compile``)
POST      ``/v1/run``         :meth:`Service.handle` (kind ``run``)
POST      ``/v1/explain``     :meth:`Service.handle` (kind ``explain``)
GET       ``/v1/targets``     :meth:`Service.targets`
GET       ``/v1/healthz``     :meth:`Service.healthz`
GET       ``/v1/stats``       :meth:`Service.stats`
========  ==================  ==========================================

Every response body is a JSON document carrying ``"api"``; every error
body follows :func:`repro.serve.schema.error_body`.  Unknown paths get
404 with the ``unknown_endpoint`` taxonomy code, wrong methods 405,
oversized bodies 413, invalid JSON 400 — all in the same envelope, so a
client needs exactly one error parser.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import RequestError
from repro.serve import schema

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_POST_ROUTES = {
    "/v1/compile": "compile",
    "/v1/run": "run",
    "/v1/explain": "explain",
}
_GET_ROUTES = ("/v1/targets", "/v1/healthz", "/v1/stats")

_MAX_HEADER_BYTES = 32 << 10


class _HttpError(Exception):
    """An error detected before (or instead of) dispatch; carries the
    taxonomy body so the client sees the standard error envelope."""

    def __init__(self, status: int, code: str, message: str, **details):
        self.status = status
        self.body = schema.error_body(
            {
                "type": "RequestError",
                "message": message,
                "marion": True,
                "details": {"code": code, **details},
            }
        )
        super().__init__(message)


def _encode(status: int, body: dict, *, keep_alive: bool) -> bytes:
    payload = json.dumps(body).encode()
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode() + payload


async def _read_request(reader, max_body: int):
    """One request off the stream -> ``(method, path, headers, body)``.

    Returns ``None`` on clean EOF between requests (client closed a
    keep-alive connection); raises :class:`_HttpError` on anything
    malformed.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _HttpError(
            400, "bad_request", "truncated HTTP request head"
        ) from None
    except asyncio.LimitOverrunError:
        raise _HttpError(
            413, "payload_too_large", "request head too large"
        ) from None
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "payload_too_large", "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise _HttpError(
            400, "bad_request", f"malformed request line {lines[0]!r}"
        )
    method, path, _version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(
                400, "bad_request", f"malformed header line {line!r}"
            )
        headers[name.strip().lower()] = value.strip()

    length = headers.get("content-length", "0")
    try:
        length = int(length)
    except ValueError:
        raise _HttpError(
            400, "bad_request", f"bad Content-Length {length!r}"
        ) from None
    if length < 0:
        raise _HttpError(400, "bad_request", "negative Content-Length")
    if length > max_body:
        raise _HttpError(
            413,
            "payload_too_large",
            f"request body of {length} bytes exceeds the "
            f"{max_body}-byte limit",
            limit=max_body,
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _parse_json(body: bytes) -> dict:
    if not body:
        raise RequestError("request body must be a JSON object")
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as exc:
        raise RequestError(
            f"request body is not valid JSON: {exc}"
        ) from None
    if not isinstance(doc, dict):
        raise RequestError(
            f"request body must be a JSON object, "
            f"got {type(doc).__name__}"
        )
    return doc


async def _dispatch(service, method: str, path: str, body: bytes):
    path = path.split("?", 1)[0]
    kind = _POST_ROUTES.get(path)
    if kind is not None:
        if method != "POST":
            raise _HttpError(
                405, "method_not_allowed", f"{path} only accepts POST"
            )
        try:
            doc = _parse_json(body)
        except RequestError as exc:
            return schema.error_body_from_exception(exc)
        return await service.handle(kind, doc)
    if path in _GET_ROUTES:
        if method != "GET":
            raise _HttpError(
                405, "method_not_allowed", f"{path} only accepts GET"
            )
        return getattr(service, path.rsplit("/", 1)[1])()
    raise _HttpError(
        404,
        "unknown_endpoint",
        f"no such endpoint {path!r}",
        endpoints=sorted([*_POST_ROUTES, *_GET_ROUTES]),
    )


async def handle_connection(service, reader, writer) -> None:
    """One client connection: serve requests until the client stops
    keeping the connection alive (or the service starts draining)."""
    try:
        while True:
            try:
                request = await _read_request(
                    reader, service.options.max_body_bytes
                )
            except _HttpError as exc:
                writer.write(
                    _encode(exc.status, exc.body, keep_alive=False)
                )
                await writer.drain()
                return
            if request is None:
                return
            method, path, headers, body = request
            keep_alive = (
                headers.get("connection", "keep-alive").lower() != "close"
                and not service._draining
            )
            try:
                status, doc = await _dispatch(service, method, path, body)
            except _HttpError as exc:
                status, doc = exc.status, exc.body
            writer.write(_encode(status, doc, keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
        pass
    except asyncio.CancelledError:
        # drain/teardown cancelled an idle keep-alive connection; end the
        # task cleanly so the stream protocol has nothing to log
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass
