"""``repro serve`` — compile-and-simulate as a service.

The batch reproduction, service-shaped: a stdlib-only asyncio HTTP/JSON
API over the same compile/simulate/explain machinery the CLI and the
evaluation harness use, backed by a warm worker pool (the pluggable
:mod:`repro.eval.executors` layer) and the persistent artifact cache,
with in-flight request deduplication and per-request deadlines.

Layers:

* :mod:`repro.serve.schema` — the versioned request API: frozen
  request/response records, JSON codecs, the shared options-document
  parsers (also the CLI's ``--options-json`` path), and the error
  payload/status mapping over the :mod:`repro.errors` taxonomy;
* :mod:`repro.serve.workers` — the module-level work units a request
  becomes (importable by name, so every executor backend can run them);
* :mod:`repro.serve.service` — the engine: executor-backed dispatch,
  deduplication, response memo, deadlines, counters, graceful drain;
* :mod:`repro.serve.http` — the asyncio HTTP/1.1 front end.

Entry points: :func:`serve_app` builds a :class:`~repro.serve.service.Service`
from a :class:`~repro.serve.service.ServeOptions`; ``repro serve`` on
the command line wraps it.
"""

from __future__ import annotations

from repro.serve.schema import (
    API_VERSION,
    CompileRequest,
    CompileResponse,
    ExplainRequest,
    ExplainResponse,
    RunRequest,
    RunResponse,
    compile_options_from_json,
    sim_options_from_json,
)
from repro.serve.service import ServeOptions, Service

__all__ = [
    "API_VERSION",
    "CompileRequest",
    "CompileResponse",
    "ExplainRequest",
    "ExplainResponse",
    "RunRequest",
    "RunResponse",
    "ServeOptions",
    "Service",
    "compile_options_from_json",
    "serve_app",
    "sim_options_from_json",
]


def serve_app(options: ServeOptions | None = None) -> Service:
    """Build the service behind ``repro serve``.

    Returns an unstarted :class:`Service`; call ``.run()`` to serve
    until SIGTERM/SIGINT (graceful drain), or drive ``.start()`` /
    ``.stop()`` from your own event loop.
    """
    return Service(options if options is not None else ServeOptions())
