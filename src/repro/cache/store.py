"""The on-disk half of the artifact cache: a checksummed file store.

One artifact is one file at ``root/<layer>/<key[:2]>/<key>.bin`` holding
a small header followed by a pickle::

    MAGIC (10 bytes) | sha256(body) (32 bytes) | body (pickle)

Publication is atomic: the blob is written to a temp file in the final
directory and ``os.replace``-d into place, so a concurrent reader never
observes a torn artifact — it sees either the old file, the new file, or
no file.  Reads verify the magic and the body checksum; anything that
fails (truncation, bit rot, a foreign file) is deleted on sight and
reported as corrupt, which the caller treats as a clean miss.

The store knows nothing about keys or caching policy — key derivation
(content hashing, the code-version salt) lives in
:class:`repro.cache.ArtifactCache`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

#: format marker; bump the trailing digit when the blob layout changes
MAGIC = b"REPRO-AC1\n"

_DIGEST_BYTES = 32

#: read statuses
HIT = "hit"
MISS = "miss"
CORRUPT = "corrupt"


class FileStore:
    """Checksummed pickle files under one root directory."""

    def __init__(self, root: Path):
        self.root = Path(root)

    def path_for(self, layer: str, key: str) -> Path:
        """Where the artifact for ``key`` lives (two-level fan-out so no
        directory accumulates tens of thousands of entries)."""
        return self.root / layer / key[:2] / f"{key}.bin"

    def read(self, layer: str, key: str) -> tuple[str, object]:
        """``(status, value)`` — status is :data:`HIT`, :data:`MISS` or
        :data:`CORRUPT`; value is only meaningful on a hit.  Corrupt
        entries are unlinked so they cannot fail twice."""
        path = self.path_for(layer, key)
        try:
            blob = path.read_bytes()
        except OSError:
            return MISS, None
        value, ok = self._decode(blob)
        if not ok:
            try:
                path.unlink()
            except OSError:
                pass
            return CORRUPT, None
        return HIT, value

    @staticmethod
    def _decode(blob: bytes) -> tuple[object, bool]:
        header = len(MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(MAGIC):
            return None, False
        digest = blob[len(MAGIC) : header]
        body = blob[header:]
        if hashlib.sha256(body).digest() != digest:
            return None, False
        try:
            return pickle.loads(body), True
        except Exception:
            # the checksum passed but the pickle does not load (e.g. an
            # artifact written under a different code layout without a
            # salt bump) — treat exactly like corruption
            return None, False

    def write(self, layer: str, key: str, value: object) -> int:
        """Serialize and atomically publish ``value``; returns the blob
        size in bytes.  Raises whatever :func:`pickle.dumps` raises for
        unpicklable values — the caller decides whether that is fatal."""
        body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = MAGIC + hashlib.sha256(body).digest() + body
        path = self.path_for(layer, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".bin"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return len(blob)

    def invalidate(self, layer: str, key: str) -> bool:
        """Remove one artifact; True if a file was actually deleted."""
        try:
            self.path_for(layer, key).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Delete every artifact under the root; returns files removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for directory, _subdirs, files in os.walk(self.root, topdown=False):
            for name in files:
                try:
                    os.unlink(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
            if Path(directory) != self.root:
                try:
                    os.rmdir(directory)
                except OSError:
                    pass
        return removed

    def layer_stats(self) -> dict[str, dict[str, int]]:
        """Per-layer ``{"files": n, "entries": n, "bytes": n}`` from a
        directory walk (``entries`` mirrors ``files`` — one artifact per
        file — and is the stable name in the ``cache stats`` JSON)."""
        stats: dict[str, dict[str, int]] = {}
        if not self.root.is_dir():
            return stats
        for layer_dir in sorted(self.root.iterdir()):
            if not layer_dir.is_dir():
                continue
            files = 0
            size = 0
            for directory, _subdirs, names in os.walk(layer_dir):
                for name in names:
                    if not name.endswith(".bin") or name.startswith(".tmp-"):
                        continue
                    files += 1
                    try:
                        size += os.path.getsize(os.path.join(directory, name))
                    except OSError:
                        pass
            stats[layer_dir.name] = {
                "files": files, "entries": files, "bytes": size
            }
        return stats
