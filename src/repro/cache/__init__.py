"""Persistent content-addressed artifact cache.

Every ``repro`` process used to pay the full cold-start tax: re-parse
Maril, re-run the CGG, recompile every kernel and re-warm every JIT
segment, because all of that state died with the process.  This package
keeps the expensive products on disk, content-addressed, so a second run
mostly reads pickles:

* ``target`` — CGG output: one :class:`~repro.machine.target.TargetMachine`
  per (variant name, Maril source), consulted by
  :func:`repro.targets.load_target`;
* ``exe`` — linked executables per (target, C source, compile options),
  consulted by :func:`repro.compile_c`;
* ``jit`` — generated segment-JIT *source* (:mod:`repro.sim.jit`), so a
  new process re-``compile()``\\ s Python text instead of re-translating
  semantics trees through warmup;
* ``timing`` — block-timing memo digests (:mod:`repro.sim.blockcache`).

Keys are sha256 over a code-version salt plus the artifact's inputs
(Maril source, C source, option fingerprints, upstream keys), so a
changed input or a bumped salt is a clean miss — entries are immutable
and never updated in place.  Publication is write-then-rename
(:mod:`repro.cache.store`), safe for concurrent processes sharing one
cache directory; the grid workers open the same store read-mostly.

Configuration is ambient: the default root is ``~/.cache/repro``,
overridden by ``REPRO_CACHE_DIR``; ``REPRO_CACHE=0`` disables the cache
entirely (every get misses, every put is dropped); ``REPRO_CACHE_SALT``
overrides the code-version salt.  :func:`configure` replaces the
process-wide instance programmatically — the evaluation harness points
it at a fresh tmpdir for cold/warm comparisons.

This module must stay import-light (no imports from the ``repro``
package root) — ``repro/__init__`` itself depends on it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from repro.cache.store import CORRUPT, HIT, FileStore
from repro.utils import timing

#: bump to invalidate every cached artifact after a change to any code
#: that shapes cached products (CGG, codegen, linker, JIT codegen,
#: pipeline digests) — this is the "code version" half of every key
CACHE_VERSION = 1

_FALSE_WORDS = ("0", "false", "off", "no")

__all__ = [
    "ArtifactCache",
    "CACHE_VERSION",
    "configure",
    "default_root",
    "get_cache",
]


def default_root() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Key derivation + counters over a :class:`FileStore`.

    ``enabled=False`` makes the cache fully inert: gets miss without
    touching the filesystem, puts and invalidations are dropped.
    Counters (``hits``/``misses``/``writes``/``corrupt``) are plain
    ints on the instance so callers can snapshot deltas even when the
    :mod:`~repro.utils.timing` recorder is disabled; when it is enabled
    the same events also flow into ``cache.*`` counters.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        enabled: bool | None = None,
        salt: str | None = None,
    ):
        self.root = Path(root) if root is not None else default_root()
        if enabled is None:
            enabled = (
                os.environ.get("REPRO_CACHE", "1").lower()
                not in _FALSE_WORDS
            )
        self.enabled = bool(enabled)
        if salt is None:
            salt = os.environ.get("REPRO_CACHE_SALT", f"v{CACHE_VERSION}")
        self.salt = salt
        self.store = FileStore(self.root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        #: per-layer session counters: ``layer -> {"hits": n, "misses":
        #: n, "writes": n}`` — same events as the aggregate ints above,
        #: attributed to the layer they touched
        self.layer_counters: dict[str, dict[str, int]] = {}

    # -- keys -------------------------------------------------------------

    def key(self, *parts) -> str:
        """sha256 hex over the salt and ``parts`` (order-sensitive,
        length-prefix framed so part boundaries cannot be confused)."""
        digest = hashlib.sha256()
        digest.update(self.salt.encode())
        for part in parts:
            data = part if isinstance(part, bytes) else str(part).encode()
            digest.update(b"\x00%d\x00" % len(data))
            digest.update(data)
        return digest.hexdigest()

    # -- access -----------------------------------------------------------

    def _layer_count(self, layer: str, event: str) -> None:
        counts = self.layer_counters.get(layer)
        if counts is None:
            counts = self.layer_counters[layer] = {
                "hits": 0, "misses": 0, "writes": 0
            }
        counts[event] += 1

    def get(self, layer: str, key: str):
        """The cached value, or ``None`` on a miss (corrupt entries are
        deleted by the store and surface here as misses)."""
        if not self.enabled:
            return None
        status, value = self.store.read(layer, key)
        if status == HIT:
            self.hits += 1
            self._layer_count(layer, "hits")
            if timing.ENABLED:
                timing.add("cache.hit")
                timing.add(f"cache.{layer}.hit")
            return value
        if status == CORRUPT:
            self.corrupt += 1
            if timing.ENABLED:
                timing.add("cache.corrupt")
        self.misses += 1
        self._layer_count(layer, "misses")
        if timing.ENABLED:
            timing.add("cache.miss")
            timing.add(f"cache.{layer}.miss")
        return None

    def put(self, layer: str, key: str, value) -> bool:
        """Atomically publish ``value``; False when the cache is off,
        the value does not pickle (e.g. a target carrying closures), or
        the filesystem refuses — a failed put is never fatal."""
        if not self.enabled:
            return False
        try:
            self.store.write(layer, key, value)
        except (pickle.PicklingError, TypeError, AttributeError, OSError):
            if timing.ENABLED:
                timing.add("cache.put_failed")
            return False
        self.writes += 1
        self._layer_count(layer, "writes")
        if timing.ENABLED:
            timing.add("cache.write")
            timing.add(f"cache.{layer}.write")
        return True

    def invalidate(self, layer: str, key: str) -> bool:
        if not self.enabled:
            return False
        return self.store.invalidate(layer, key)

    # -- introspection ----------------------------------------------------

    def counters(self) -> dict[str, int]:
        """This process's session counters (not the on-disk totals)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }

    def stats(self) -> dict:
        """JSON-ready snapshot: configuration, session counters (total
        and per layer) and a per-layer walk of what is on disk
        (``entries`` / ``bytes``)."""
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "salt": self.salt,
            "session": self.counters(),
            "session_layers": {
                layer: dict(counts)
                for layer, counts in sorted(self.layer_counters.items())
            },
            "layers": self.store.layer_stats(),
        }

    def clear(self) -> int:
        """Delete every artifact (works even when disabled — clearing a
        cache you are not using is still meaningful)."""
        return self.store.clear()


#: the process-wide instance (grid workers inherit it via fork)
_active: ArtifactCache | None = None


def get_cache() -> ArtifactCache:
    """The process-wide cache, created from the environment on first use."""
    global _active
    if _active is None:
        _active = ArtifactCache()
    return _active


def configure(
    root: str | Path | None = None,
    enabled: bool | None = None,
    salt: str | None = None,
) -> ArtifactCache:
    """Replace the process-wide cache (arguments beat the environment)."""
    global _active
    _active = ArtifactCache(root=root, enabled=enabled, salt=salt)
    return _active
