"""Consolidated option records for the public API.

:class:`CompileOptions` replaces the keyword list that ``compile_c`` and
:class:`~repro.backend.codegen.CodeGenerator` had been accreting
(``strategy``, ``heuristic``, ``schedule``, ``fill_delay_slots``,
``memory_size``, ...).  It is frozen — an options value can be shared
between threads, used as a dict key, and journalled — and every layer of
the back end threads the *same* object through instead of re-plumbing
individual keywords.

The legacy keywords were deprecated through 1.1 and have graduated:
passing one now raises :class:`TypeError` naming the replacement (see
:func:`merge_legacy_kwargs`).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.errors import MarionError

#: sentinel distinguishing "keyword not passed" from any real value
UNSET = object()

#: process-wide default for :attr:`SimOptions.fast_timing`, read once at
#: import.  ``REPRO_FAST_TIMING=0`` forces the reference interleaved
#: timing path for every run that does not set the field explicitly —
#: CI's cross-validation job runs the suite under both values.
_FAST_TIMING_DEFAULT = os.environ.get(
    "REPRO_FAST_TIMING", "1"
).lower() not in ("0", "false", "off", "no")

#: process-wide default for :attr:`SimOptions.jit`, read once at import.
#: ``REPRO_JIT=0`` keeps every run on the closure interpreter — CI's
#: cross-validation job runs the differential suite under both values.
_JIT_DEFAULT = os.environ.get(
    "REPRO_JIT", "1"
).lower() not in ("0", "false", "off", "no")

#: process-wide default for :attr:`SimOptions.superblock`, read once at
#: import.  ``REPRO_SUPERBLOCK=0`` keeps the JIT at straight-line
#: segments (no trace superblocks) — CI cross-validates both values.
_SUPERBLOCK_DEFAULT = os.environ.get(
    "REPRO_SUPERBLOCK", "1"
).lower() not in ("0", "false", "off", "no")

#: process-wide default for :attr:`SimOptions.timing_chain`, read once
#: at import.  ``REPRO_TIMING_CHAIN=0`` makes every segment boundary go
#: through :meth:`BlockTimingCache.close` instead of the inline
#: transition tables — CI cross-validates both values.
_TIMING_CHAIN_DEFAULT = os.environ.get(
    "REPRO_TIMING_CHAIN", "1"
).lower() not in ("0", "false", "off", "no")


@dataclass(frozen=True)
class CompileOptions:
    """Everything that shapes one compilation, in one frozen record.

    * ``strategy`` — code generation strategy: ``postpass``, ``ips`` or
      ``rase``;
    * ``heuristic`` — list scheduling priority: ``maxdist`` or ``fifo``;
    * ``schedule`` — ``False`` selects the unscheduled (local-only)
      baseline: program order, delay slots nop-filled;
    * ``fill_delay_slots`` — run the Gross-Hennessy delay-slot filling
      extension after the strategy;
    * ``memory_size`` — bytes of simulated memory the linker lays the
      program into.
    """

    strategy: str = "postpass"
    heuristic: str = "maxdist"
    schedule: bool = True
    fill_delay_slots: bool = False
    memory_size: int = 1 << 20

    def __post_init__(self) -> None:
        if self.strategy not in ("postpass", "ips", "rase"):
            raise MarionError(
                f"unknown strategy {self.strategy!r}; "
                "known: postpass, ips, rase"
            )
        if self.heuristic not in ("maxdist", "fifo"):
            # ValueError, matching the scheduler's own rejection of an
            # unknown heuristic name
            raise ValueError(
                f"unknown heuristic {self.heuristic!r}; known: maxdist, fifo"
            )

    def replace(self, **changes) -> "CompileOptions":
        """A copy with the given fields changed (frozen-friendly)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SimOptions:
    """Everything that shapes one simulation run, in one frozen record.

    * ``cache`` — data-cache model: ``None``/``False`` for no cache,
      ``True`` for a default-geometry
      :class:`~repro.sim.cache.DirectMappedCache`, or a ready-built cache
      instance (resolved inside the simulator, so this module stays
      import-light);
    * ``model_timing`` — run the cycle-level pipeline model (``False``
      executes functionally and reports instruction counts as cycles);
    * ``max_instructions`` — functional-execution fuse (infinite loops);
    * ``max_cycles`` — optional watchdog: the run raises
      :class:`~repro.errors.SimulationTimeout` past this cycle budget;
    * ``trace`` — use the accounting pipeline model, which attributes
      every stall cycle to a hazard kind and fills
      ``SimResult.cycle_breakdown``;
    * ``fast_timing`` — consult the pipeline model through the memoized
      block-timing cache (:mod:`repro.sim.blockcache`), which returns
      bit-identical cycle counts while skipping the per-instruction
      hazard walk for repeated basic blocks.  The simulator falls back
      to the reference interleaved path automatically whenever the run
      needs per-instruction timing: ``trace=True`` (the accounting model
      attributes every cycle), an armed ``max_cycles`` watchdog (its
      raise point is cycle-exact), or a ``watch=`` callback (it receives
      per-instruction issue cycles);
    * ``jit`` — compile hot straight-line segments to specialized Python
      (:mod:`repro.sim.jit`) once they cross the warmup threshold.
      Bit-identical to the interpreter (guarded deopt re-executes
      anything uncovered); only active on the fast-timing path, so runs
      that need per-instruction observation (``trace=True``, ``watch=``,
      ``max_cycles``) are automatically interpreted.  ``REPRO_JIT=0``
      turns it off process-wide.
    * ``superblock`` — let the segment JIT stitch hot multi-segment
      traces (loop nests, if-diamonds) into single compiled superblocks
      with the block-timing probe inlined, so steady-state loop
      iterations never return to the dispatch loop.  Bit-identical to
      plain segments (a superblock closes exactly the same per-segment
      timing units in the same order); only meaningful with ``jit=True``
      on the fast-timing path.  ``REPRO_SUPERBLOCK=0`` turns it off
      process-wide.
    * ``timing_chain`` — hand generated code (and chained loops inside
      it) the block-timing memo's per-segment *transition tables*, so a
      warm segment boundary commits timing with one integer-tuple dict
      lookup and no call back into
      :class:`~repro.sim.blockcache.BlockTimingCache`.  With it off,
      every boundary takes the ``close()`` call path instead — same
      memo, same records, bit-identical results, just slower.
      ``REPRO_TIMING_CHAIN=0`` turns it off process-wide.
    """

    cache: object = None
    model_timing: bool = True
    max_instructions: int = 50_000_000
    max_cycles: int | None = None
    trace: bool = False
    fast_timing: bool = _FAST_TIMING_DEFAULT
    jit: bool = _JIT_DEFAULT
    superblock: bool = _SUPERBLOCK_DEFAULT
    timing_chain: bool = _TIMING_CHAIN_DEFAULT

    def replace(self, **changes) -> "SimOptions":
        """A copy with the given fields changed (frozen-friendly)."""
        return dataclasses.replace(self, **changes)


def merge_legacy_kwargs(
    options,
    legacy: dict,
    *,
    where: str,
    factory=CompileOptions,
):
    """Reject the pre-1.1 (legacy-keyword) call styles, helpfully.

    ``legacy`` maps keyword name to value for every keyword the caller
    actually passed (values equal to :data:`UNSET` are dropped here).
    The legacy spellings were deprecated through 1.1 and have now
    graduated: any use raises :class:`TypeError` naming the
    replacement.  The keywords stay in the public signatures only so
    old call sites get this message instead of a generic
    "unexpected keyword argument".  ``factory`` selects the record type
    — :class:`CompileOptions` (default) or :class:`SimOptions`.
    """
    passed = sorted(k for k, v in legacy.items() if v is not UNSET)
    if factory is CompileOptions and isinstance(options, str):
        # old positional strategy argument
        raise TypeError(
            f"{where}: a positional strategy string is no longer "
            f"accepted; pass options=CompileOptions(strategy="
            f"{options!r}) instead"
        )
    if passed:
        raise TypeError(
            f"{where}: the {', '.join(passed)} keyword(s) were removed; "
            f"pass options={factory.__name__}"
            f"({', '.join(f'{name}=...' for name in passed)}) instead"
        )
    return options if options is not None else factory()
