"""Table 3 — compile time and dilation.

The paper times its front end and the Marion back ends (per strategy,
R2000 and i860) compiling a program suite, and reports *dilation* — the
ratio of instructions executed to instructions generated.  We time our
front end and back ends over the substitute suite (DESIGN.md).  The shape
to reproduce: Postpass < IPS < RASE in back-end time (IPS schedules twice,
RASE gathers extra estimates), and the i860 costing roughly twice the
R2000 (sub-operations multiply the instruction count; temporal scheduling
and classes add work).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import repro
from repro.backend.codegen import CodeGenerator
from repro.frontend import compile_to_il
from repro.options import CompileOptions
from repro.program import link
from repro.utils.tables import TextTable
from repro.workloads import PROGRAM_SUITE

from repro.eval.common import STRATEGIES, compile_kernel


@dataclass
class CompileTimeRow:
    module: str  # "front end" or "<target>/<strategy>"
    seconds: float
    dilation: float | None = None


@dataclass
class Table3Data:
    rows: list[CompileTimeRow] = field(default_factory=list)

    def row(self, module: str) -> CompileTimeRow:
        for row in self.rows:
            if row.module == module:
                return row
        raise KeyError(module)


def measure(
    targets=("r2000", "i860"), repeat: int = 1, simulate: bool = True
) -> Table3Data:
    """``simulate=False`` skips the dilation runs (dilation stays
    ``None``) — for callers that only need the compile-time rows."""
    data = Table3Data()

    # front end alone
    start = time.perf_counter()
    for _ in range(repeat):
        il_programs = [compile_to_il(p.source) for p in PROGRAM_SUITE]
    data.rows.append(
        CompileTimeRow("Lcc-analog front end", time.perf_counter() - start)
    )

    for target_name in targets:
        target = repro.load_target(target_name)
        for strategy in STRATEGIES + ("noscheduler",):
            schedule = strategy != "noscheduler"
            real_strategy = strategy if schedule else "postpass"
            start = time.perf_counter()
            executables = []
            for _ in range(repeat):
                executables = []
                for program in PROGRAM_SUITE:
                    generator = CodeGenerator(
                        target,
                        CompileOptions(
                            strategy=real_strategy, schedule=schedule
                        ),
                    )
                    machine_program = generator.compile_il(
                        compile_to_il(program.source)
                    )
                    executable = link(machine_program)
                    executable.machine_program = machine_program
                    executables.append(executable)
            elapsed = time.perf_counter() - start

            executed = 0
            generated = 0
            for program, executable in zip(PROGRAM_SUITE, executables):
                if not simulate:
                    break
                # the dilation run re-compiles through the cache-aware
                # path (bit-identical program): the timed loop above
                # measures raw compile cost, but the *simulation* can
                # reuse preloaded JIT state instead of re-warming the
                # just-built executable from zero
                sim_exe = compile_kernel(
                    program.source,
                    target,
                    CompileOptions(
                        strategy=real_strategy, schedule=schedule
                    ),
                )
                result = repro.simulate(
                    sim_exe, program.entry, args=program.args,
                    options=repro.SimOptions(model_timing=False),
                )
                executed += result.instructions
                generated += executable.instruction_count()
            label = (
                f"Marion, {target_name}, {strategy}"
                if schedule
                else f"local-only baseline, {target_name}"
            )
            data.rows.append(
                CompileTimeRow(
                    label,
                    elapsed,
                    dilation=(
                        executed / max(1, generated) if simulate else None
                    ),
                )
            )
    return data


def table3(targets=("r2000", "i860"), repeat: int = 1) -> str:
    data = measure(targets=targets, repeat=repeat)
    table = TextTable(
        ["Module", "Time (s)", "Dilation"],
        title="Table 3: compile time over the program suite, and dilation",
    )
    for row in data.rows:
        table.add_row(
            row.module,
            f"{row.seconds:.3f}",
            "-" if row.dilation is None else f"{row.dilation:.2f}",
        )
    return str(table)
