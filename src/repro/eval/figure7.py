"""Figure 7 — code produced by the Marion i860 Postpass compiler.

The paper shows the schedule for ``a = (x + b) + (a * z); return(y + z);``:
multiply and add sub-operations packed into dual-operation long
instructions, with the add pipe consuming the multiply pipe's output.  We
compile the same fragment with the i860 Postpass back end and print each
cycle's packed sub-operations — the reproduced shape is the dual-operation
packing (several sub-operations sharing one cycle) and the explicit
advance of both pipelines.
"""

from __future__ import annotations

import repro
from repro.backend.scheduler import ListScheduler

FRAGMENT = """
double frag(double a, double z, double x, double b) {
    double y;
    y = x * 2.0;
    a = (x + b) + (a * z);
    return y + z + a;
}
"""


def figure7(strategy: str = "postpass") -> str:
    executable = repro.compile_c(FRAGMENT, "i860", repro.CompileOptions(strategy=strategy))
    machine_program = executable.machine_program
    fn = machine_program.function("frag")
    target = machine_program.target

    lines = [
        "Figure 7: i860 "
        + strategy
        + " schedule for  a = (x + b) + (a * z); return y + z + a;",
        f"{'Cycle':>5}  packed operations",
    ]
    scheduler = ListScheduler(target)
    for block in fn.blocks:
        result = scheduler.schedule_block(block.instrs)
        by_cycle: dict[int, list[str]] = {}
        for instr in result.instrs:
            cycle = result.issue_cycle[instr.id]
            by_cycle.setdefault(cycle, []).append(str(instr))
        lines.append(f"{block.label}:")
        for cycle in sorted(by_cycle):
            ops = "   |   ".join(by_cycle[cycle])
            lines.append(f"{cycle:5d}  {ops}")
    return "\n".join(lines)


def dual_operation_count(strategy: str = "postpass") -> int:
    """How many cycles carry more than one operation (packing evidence)."""
    executable = repro.compile_c(FRAGMENT, "i860", repro.CompileOptions(strategy=strategy))
    fn = executable.machine_program.function("frag")
    target = executable.machine_program.target
    scheduler = ListScheduler(target)
    packed_cycles = 0
    for block in fn.blocks:
        result = scheduler.schedule_block(block.instrs)
        by_cycle: dict[int, int] = {}
        for instr in result.instrs:
            cycle = result.issue_cycle[instr.id]
            by_cycle[cycle] = by_cycle.get(cycle, 0) + 1
        packed_cycles += sum(1 for count in by_cycle.values() if count > 1)
    return packed_cycles
