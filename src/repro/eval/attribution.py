"""The report's stall-attribution section.

Answers "where do the cycles go?" per target and strategy: one
representative Livermore kernel is compiled and simulated under the
accounting pipeline model (``SimOptions(trace=True)``), and the cycles
the issue point lost come back attributed to hazard kinds — alongside
the scheduler's own stall-reason histogram for the same binary (why the
*static* schedule carries nop slots).  The runs fan out over the same
fault-tolerant grid as the tables, at a fixed small problem scale so
the section stays cheap regardless of ``--scale``.
"""

from __future__ import annotations

from repro.eval.common import STRATEGIES, kernel_key
from repro.eval.grid import GridFailure, GridOptions, GridTask, run_grid
from repro.obs import stalls as stall_codes
from repro.utils.tables import TextTable

#: the representative kernel (K7: inner-product heavy, exercises loads,
#: latencies and branches) and the fixed scale the section runs at
KERNEL_ID = 7
SCALE = 0.15

TARGETS = ("r2000", "i860")


def measure_stalls(
    targets=TARGETS,
    strategies=STRATEGIES,
    kernel_id: int = KERNEL_ID,
    scale: float = SCALE,
    options: GridOptions | None = None,
):
    """(target, strategy) -> KernelRun with ``cycle_breakdown`` filled.

    Failed units appear as :class:`GridFailure` values instead.
    """
    from repro.eval.common import grid_run_kernel

    tasks = [
        GridTask(
            kernel_key("stalls", target, strategy, kernel_id),
            grid_run_kernel,
            (kernel_id, target, strategy),
            {"scale": scale, "breakdown": True},
            batch_key=f"{target}/{strategy}",
        )
        for target in targets
        for strategy in strategies
    ]
    results = run_grid(tasks, options, label="stalls")
    out = {}
    index = 0
    for target in targets:
        for strategy in strategies:
            out[(target, strategy)] = results[index]
            index += 1
    return out


def render_stalls(data) -> str:
    """The section body: simulator cycle breakdown + scheduler reasons."""
    kinds = list(stall_codes.SIM_STALL_KINDS)
    table = TextTable(
        ["Target", "Strat", "Cycles", "Stall"] + [k[:8] for k in kinds]
    )
    failures: list[str] = []
    sched_lines: list[str] = []
    for (target, strategy), run in data.items():
        if isinstance(run, GridFailure):
            failures.append(f"  FAILED: {run.summary()}")
            continue
        breakdown = run.cycle_breakdown or {}
        table.add_row(
            target,
            strategy,
            run.actual_cycles,
            run.stall_cycles,
            *[breakdown.get(kind, 0) for kind in kinds],
        )
        reasons = ", ".join(
            f"{reason} x{count}"
            for reason, count in sorted(
                run.sched_stall_reasons.items(),
                key=lambda item: -item[1],
            )[:4]
        )
        sched_lines.append(
            f"  {target}/{strategy}: {run.sched_nop_slots} scheduled nop "
            f"slots ({reasons or 'none'})"
        )
    parts = [
        f"kernel K{KERNEL_ID} at scale {SCALE} under the accounting "
        "pipeline model; every cycle of issue-point advance is attributed "
        "(columns sum to Cycles - 1; 'resource' includes issue-slot "
        "serialization on single-issue machines)",
        str(table),
        "scheduler stall reasons (static, final pass):",
    ]
    parts.extend(sched_lines)
    parts.extend(failures)
    return "\n".join(parts)
