"""Section 5 headline claims.

C1: "RASE and IPS both produce code that is 12% faster than that produced
by Postpass, on a computation-intensive workload."  The paper's workload
(NAS Kernel, ARC2D) is large-basic-block floating point code; we measure
the geomean Postpass/IPS and Postpass/RASE cycle ratios over the
large-block Livermore kernels (6-10) plus an unrolled hydro fragment
standing in for the unrolled library code of the paper's suite, comparing
*kernel-loop* cycles (loop-count differencing cancels each kernel's
call-heavy initialisation, which no scheduling strategy can help).  The
shape to reproduce is the *direction and rough size* of the win on big
blocks (small-block kernels are a wash, as expected: there is little for
a prepass to reorder).

C2: compile-time orderings (checked inside Table 3's data): Postpass < IPS
< RASE for one target, and i860 compilation slower than R2000.

C3: "For the Livermore Loops RASE-generated code was 26% faster than code
produced by mips -O1, which performs only local optimization."  Our
``mips -O1`` stand-in is the same back end with scheduling disabled
(register allocation, delay slots nop-filled); the comparison is over the
kernel loops alone (loop-count differencing cancels the shared
initialisation code).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import repro
from repro.eval.common import compile_kernel
from repro.eval.grid import (
    GridFailure,
    GridOptions,
    GridTask,
    run_grid,
    with_jobs,
)
from repro.eval.table3 import measure as measure_table3
from repro.workloads import LIVERMORE_KERNELS, kernel_by_id

#: the computation-intensive (large basic block) kernels
FP_KERNELS = (6, 7, 8, 9, 10)

#: an unrolled hydro fragment: the big-block shape of the paper's suite
UNROLLED_HYDRO = """
double x[1024], y[1024], z[1024];
double q, r, t;
void init(void) {
    int k;
    q = 0.3; r = 0.7; t = 0.9;
    for (k = 0; k < 1024; k++) { x[k] = 0.0; y[k] = k * 0.001; z[k] = k * 0.002; }
}
double kernel(int loop, int n) {
    int l, k;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (k = 0; k < n; k = k + 4) {
            x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
            x[k+1] = q + y[k+1] * (r * z[k + 11] + t * z[k + 12]);
            x[k+2] = q + y[k+2] * (r * z[k + 12] + t * z[k + 13]);
            x[k+3] = q + y[k+3] * (r * z[k + 13] + t * z[k + 14]);
        }
    }
    for (k = 0; k < n; k++) { s = s + x[k]; }
    return s;
}
double bench(int loop, int n) { init(); return kernel(loop, n); }
"""


def _marginal_cycles(executable, loop: int, n: int) -> int:
    two = repro.simulate(executable, "bench", args=(2 * loop, n)).cycles
    one = repro.simulate(executable, "bench", args=(loop, n)).cycles
    return two - one


@dataclass
class SpeedupClaim:
    ips_speedup: float  # postpass_cycles / ips_cycles, geometric mean
    rase_speedup: float
    per_kernel: dict[int, tuple[float, float]]
    #: units that produced no measurement (geomeans cover the survivors)
    failures: list[GridFailure] = field(default_factory=list)


def _strategy_unit(
    kernel_id: int, target: str, scale: float
) -> tuple[int, float, float]:
    """One workload's (kernel_id, postpass/ips, postpass/rase) ratios.

    ``kernel_id == 0`` selects the unrolled hydro fragment.
    """
    if kernel_id == 0:
        source = UNROLLED_HYDRO
        loop, n = 1, max(8, int(512 * scale) // 4 * 4)
    else:
        spec = kernel_by_id(kernel_id)
        source = spec.source
        loop, n = spec.args
        n = max(4, int(n * scale))
    cycles = {}
    for strategy in ("postpass", "ips", "rase"):
        exe = compile_kernel(
            source, target, repro.CompileOptions(strategy=strategy)
        )
        cycles[strategy] = _marginal_cycles(exe, loop, n)
    return (
        kernel_id,
        cycles["postpass"] / cycles["ips"],
        cycles["postpass"] / cycles["rase"],
    )


def claim_strategy_speedup(
    target: str = "r2000",
    kernel_ids=FP_KERNELS,
    scale: float = 0.25,
    jobs: int | None = None,
    options: GridOptions | None = None,
) -> SpeedupClaim:
    ids = [spec.id for spec in LIVERMORE_KERNELS if spec.id in kernel_ids]
    ids.append(0)  # the unrolled fragment
    results = run_grid(
        [
            GridTask(
                f"claim_c1/{target}/all/K{kid}",
                _strategy_unit,
                (kid, target, scale),
            )
            for kid in ids
        ],
        with_jobs(options, jobs),
        label="claim_c1",
    )
    per_kernel: dict[int, tuple[float, float]] = {}
    failures = [r for r in results if isinstance(r, GridFailure)]
    log_ips = 0.0
    log_rase = 0.0
    for outcome in results:
        if isinstance(outcome, GridFailure):
            continue
        kid, ips_ratio, rase_ratio = outcome
        per_kernel[kid] = (ips_ratio, rase_ratio)
        log_ips += math.log(ips_ratio)
        log_rase += math.log(rase_ratio)
    count = max(1, len(per_kernel))
    return SpeedupClaim(
        ips_speedup=math.exp(log_ips / count),
        rase_speedup=math.exp(log_rase / count),
        per_kernel=per_kernel,
        failures=failures,
    )


@dataclass
class BaselineClaim:
    """RASE vs the unscheduled (local-only) baseline."""

    geomean_speedup: float
    per_kernel: dict[int, float]
    failures: list[GridFailure] = field(default_factory=list)


def _baseline_unit(kernel_id: int, target: str, scale: float) -> tuple[int, float]:
    spec = kernel_by_id(kernel_id)
    loop, n = spec.args
    n = max(4, int(n * scale))
    rase = compile_kernel(
        spec.source, target, repro.CompileOptions(strategy="rase")
    )
    baseline = compile_kernel(
        spec.source,
        target,
        repro.CompileOptions(strategy="postpass", schedule=False),
    )
    ratio = _marginal_cycles(baseline, loop, n) / max(
        1, _marginal_cycles(rase, loop, n)
    )
    return spec.id, ratio


def claim_rase_vs_unscheduled(
    target: str = "r2000",
    scale: float = 0.25,
    jobs: int | None = None,
    options: GridOptions | None = None,
) -> BaselineClaim:
    results = run_grid(
        [
            GridTask(
                f"claim_c3/{target}/rase/K{spec.id}",
                _baseline_unit,
                (spec.id, target, scale),
            )
            for spec in LIVERMORE_KERNELS
        ],
        with_jobs(options, jobs),
        label="claim_c3",
    )
    failures = [r for r in results if isinstance(r, GridFailure)]
    measured = [r for r in results if not isinstance(r, GridFailure)]
    per_kernel = {kid: ratio for kid, ratio in measured}
    log_total = sum(math.log(ratio) for _kid, ratio in measured)
    return BaselineClaim(
        geomean_speedup=math.exp(log_total / max(1, len(per_kernel))),
        per_kernel=per_kernel,
        failures=failures,
    )


@dataclass
class CompileTimeClaim:
    postpass_seconds: float
    ips_seconds: float
    rase_seconds: float
    r2000_total: float
    i860_total: float

    @property
    def ordering_holds(self) -> bool:
        return self.postpass_seconds <= self.ips_seconds <= self.rase_seconds

    @property
    def i860_slowdown(self) -> float:
        return self.i860_total / self.r2000_total


def claim_compile_time_ordering(repeat: int = 2) -> CompileTimeClaim:
    # compile-time rows only: the claim never reads dilation, so skip
    # the simulation pass the full Table 3 section pays for
    data = measure_table3(
        targets=("r2000", "i860"), repeat=repeat, simulate=False
    )
    return CompileTimeClaim(
        postpass_seconds=data.row("Marion, r2000, postpass").seconds,
        ips_seconds=data.row("Marion, r2000, ips").seconds,
        rase_seconds=data.row("Marion, r2000, rase").seconds,
        r2000_total=sum(
            row.seconds for row in data.rows if "r2000" in row.module
        ),
        i860_total=sum(
            row.seconds for row in data.rows if "i860" in row.module
        ),
    )
