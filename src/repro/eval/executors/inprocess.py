"""The in-process backend: serial, deterministic, zero pickling.

``InprocessAsyncExecutor`` queues submissions and runs them one at a
time *inside* :meth:`next_event` — execution is deferred to the drain
loop, not performed at submit time, which is what makes cancellation of
queued units meaningful on a serial backend.  Units run on the caller's
thread in submission order, so behaviour (and every timing counter) is
bit-identical to the pre-executor serial loop: no worker processes, no
pickling, metrics accrue directly in the calling process instead of
round-tripping through a snapshot merge.

This is the backend ``run_grid`` picks for ``jobs=1`` (the reference
every parallel backend must match byte-for-byte) and the one the
conformance suite uses to pin expected semantics.
"""

from __future__ import annotations

from collections import deque

from repro.errors import error_payload
from repro.eval.executors.base import (
    Executor,
    ExecutorProbe,
    UnitEvent,
    unit_deadline,
)
from repro.utils import timing


class InprocessAsyncExecutor(Executor):
    backend = "inprocess"

    def __init__(self):
        self._queue: deque = deque()
        self._attempts: dict[str, int] = {}  # key -> queued-copy dispatches

    def submit(self, task, timeout: float | None = None) -> str:
        self._queue.append((task, timeout))
        self._attempts[task.key] = self._attempts.get(task.key, 0) + 1
        return task.key

    def _take_attempts(self, key: str) -> int:
        attempts = self._attempts.get(key, 1)
        if not any(item[0].key == key for item in self._queue):
            self._attempts.pop(key, None)
        return attempts

    def next_event(self, timeout: float | None = None) -> UnitEvent | None:
        if not self._queue:
            return None
        task, deadline = self._queue.popleft()
        attempts = self._take_attempts(task.key)
        watch = timing.stopwatch()
        try:
            with unit_deadline(deadline):
                value = task.run()
        except Exception as exc:  # noqa: BLE001 — containment is the contract
            return UnitEvent(
                task.key, "err", error_payload(exc), watch.seconds,
                attempts=attempts,
            )
        return UnitEvent(
            task.key, "ok", value, watch.seconds, attempts=attempts
        )

    def cancel(self, key: str) -> bool:
        kept = deque(item for item in self._queue if item[0].key != key)
        dropped = len(self._queue) - len(kept)
        self._queue = kept
        if dropped and not any(item[0].key == key for item in kept):
            self._attempts.pop(key, None)
        return dropped > 0

    def probe(self) -> ExecutorProbe:
        # idle=0 always: there is never a spare worker to steal onto
        return ExecutorProbe(
            backend=self.backend,
            workers=1,
            idle=0,
            queued=len(self._queue),
            in_flight=0,
        )

    def close(self) -> None:
        self._queue.clear()
        self._attempts.clear()
