"""The multi-host backend: length-framed pickle over TCP, stdlib only.

``SocketExecutor`` opens a listening socket and hands work units to any
worker that connects — workers it spawned itself (``spawn=N`` launches
``repro worker --connect HOST:PORT`` subprocesses) and workers started
by hand on other machines against the same address.  The wire format is
deliberately small:

* every frame is an 8-byte big-endian length followed by a pickle;
* a worker opens with ``{"kind": "hello", "pid", "host"}`` and receives
  ``{"kind": "config", "cache": {root, enabled, salt}, "timing": bool}``
  so it points its artifact cache at the coordinator's and mirrors the
  instrumentation switch;
* tasks go out as ``{"kind": "task", "key", "fn": "module:qualname",
  "args", "kwargs", "timeout"}`` — the callable travels *by name* and
  the args carry artifact-cache keys, so a warm worker pulls targets
  and executables from the content-addressed cache instead of receiving
  megabytes of pickled state per unit;
* results come back as ``{"kind": "result", "key", "status", "value",
  "wall_s", "metrics", "pid"}`` and surface as
  :class:`~repro.eval.executors.base.UnitEvent`.

Fault model: a worker that disconnects mid-unit orphans its in-flight
keys; the executor requeues them for the surviving workers
(``grid.adopted_units``) until a key exhausts ``retries``, at which
point it becomes a ``WorkerCrash`` event.  Spawned workers are
relaunched while work remains outstanding; externally connected workers
are the operator's to restart.  Paired with the grid's journal (which
records each completion with the worker that produced it), this is the
journal-as-coordination story: a killed worker costs only the units it
had in flight, because everything it finished is already fsync'd.

Pickle over TCP executes arbitrary code by design — bind stays on
``127.0.0.1`` unless the operator explicitly opts into a trusted
network interface.
"""

from __future__ import annotations

import importlib
import os
import pickle
import queue
import socket
import struct
import subprocess
import sys
import threading
import time

from repro.errors import error_payload
from repro.eval.executors.base import (
    CRASH_PAYLOAD,
    Executor,
    ExecutorProbe,
    UnitEvent,
    run_unit,
)
from repro.utils import timing

#: refuse frames beyond this many bytes (a corrupt length prefix would
#: otherwise ask for an absurd allocation)
MAX_FRAME = 1 << 30

_LEN = struct.Struct(">Q")


def send_msg(sock: socket.socket, obj) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket):
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME:
        raise ConnectionError(f"frame of {length} bytes exceeds MAX_FRAME")
    return pickle.loads(_recv_exact(sock, length))


def callable_ref(fn) -> str:
    """``module:qualname`` for a module-level callable (grid unit fns
    are importable by contract — the local pool pickles them the same
    way)."""
    return f"{fn.__module__}:{fn.__qualname__}"


def resolve_callable(ref: str):
    module_name, _, qualname = ref.partition(":")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def parse_address(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` or ``PORT`` (host defaults to 127.0.0.1)."""
    host, _, port = spec.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"bad worker address {spec!r}, want HOST:PORT") from None


class _Worker:
    """Coordinator-side handle for one connected worker."""

    def __init__(self, name: str, sock: socket.socket, proc=None):
        self.name = name
        self.sock = sock
        self.proc = proc  # Popen when we spawned it, else None
        self.inflight: dict[str, float] = {}  # key -> dispatch time
        self.alive = True
        self.send_lock = threading.Lock()

    def send(self, obj) -> None:
        with self.send_lock:
            send_msg(self.sock, obj)


class SocketExecutor(Executor):
    backend = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn: int = 0,
        retries: int = 2,
        connect_timeout: float = 60.0,
    ):
        self.retries = retries
        self.connect_timeout = connect_timeout
        self._lock = threading.RLock()
        self._events: queue.Queue = queue.Queue()
        self._workers: dict[str, _Worker] = {}
        self._pending: list[str] = []
        self._tasks: dict = {}  # key -> (task, timeout)
        self._attempts: dict[str, int] = {}
        self._copies: dict[str, int] = {}
        self._spawned: list = []
        self._seq = 0
        self._closed = False
        self._started_at = time.monotonic()
        self._last_worker_at = self._started_at

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(64)
        self.host, self.port = self._server.getsockname()[:2]
        self.spawn = max(0, int(spawn))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="socketexec-accept", daemon=True
        )
        self._accept_thread.start()
        for _ in range(self.spawn):
            self._spawn_worker()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- worker lifecycle --------------------------------------------------

    def _spawn_worker(self):
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        )
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--connect", self.address],
            env=env,
        )
        self._spawned.append(proc)
        return proc

    def _accept_loop(self):
        while True:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            threading.Thread(
                target=self._serve_worker, args=(conn,), daemon=True
            ).start()

    def _serve_worker(self, conn: socket.socket):
        try:
            hello = recv_msg(conn)
            if not isinstance(hello, dict) or hello.get("kind") != "hello":
                conn.close()
                return
        except (ConnectionError, OSError, pickle.UnpicklingError, EOFError):
            conn.close()
            return
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            from repro.cache import get_cache

            cache = get_cache()
            cache_cfg = {
                "root": str(cache.root),
                "enabled": cache.enabled,
                "salt": cache.salt,
            }
        except Exception:
            cache_cfg = None
        with self._lock:
            self._seq += 1
            name = (
                f"w{self._seq}-{hello.get('host', '?')}-pid{hello.get('pid', 0)}"
            )
            worker = _Worker(name, conn, proc=None)
            # claim ownership of one of our pending spawned processes so
            # worker death knows whether a respawn is ours to do
            pid = hello.get("pid")
            for proc in self._spawned:
                if proc.pid == pid:
                    worker.proc = proc
                    break
        # the config frame goes out *before* the worker is registered:
        # once it is visible to _pump, a concurrent submit could put a
        # task frame on the wire ahead of the config
        try:
            worker.send({"kind": "config", "cache": cache_cfg, "timing": timing.ENABLED})
        except OSError:
            self._drop_worker(worker)
            return
        with self._lock:
            if self._closed:
                worker.alive = False
            else:
                self._workers[name] = worker
                self._last_worker_at = time.monotonic()
                self._pump()
        if not worker.alive:
            try:
                worker.send({"kind": "shutdown"})
            except OSError:
                pass
            conn.close()
            return
        self._reader_loop(worker)

    def _reader_loop(self, worker: _Worker):
        while True:
            try:
                msg = recv_msg(worker.sock)
            except (ConnectionError, OSError, pickle.UnpicklingError, EOFError):
                self._drop_worker(worker)
                return
            if not isinstance(msg, dict):
                continue
            if msg.get("kind") == "result":
                self._on_result(worker, msg)

    def _on_result(self, worker: _Worker, msg: dict):
        key = msg.get("key", "")
        with self._lock:
            worker.inflight.pop(key, None)
            attempts = self._attempts.get(key, 1)
            self._finish_copy(key)
            # enqueue under the lock: next_event's nothing-outstanding
            # check must never observe the gap between "no longer in
            # flight" and "event available"
            self._events.put(
                UnitEvent(
                    key=key,
                    status=msg.get("status", "err"),
                    value=msg.get("value"),
                    wall_s=float(msg.get("wall_s", 0.0)),
                    metrics=msg.get("metrics"),
                    attempts=attempts,
                    worker=worker.name,
                )
            )
            self._pump()

    def _drop_worker(self, worker: _Worker):
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.name, None)
            orphans = sorted(worker.inflight)
            worker.inflight.clear()
            try:
                worker.sock.close()
            except OSError:
                pass
            for key in orphans:
                attempts = self._attempts.get(key, 1)
                if attempts > self.retries:
                    self._copies[key] = 1
                    self._finish_copy(key)
                    self._events.put(
                        UnitEvent(
                            key, "err", dict(CRASH_PAYLOAD), 0.0, None, attempts
                        )
                    )
                else:
                    timing.add("grid.adopted_units")
                    self._copies[key] = self._copies.get(key, 1) - 1
                    self._pending.append(key)
            respawn = (
                worker.proc is not None
                and not self._closed
                and bool(self._pending or self._outstanding())
            )
            if respawn:
                self._spawn_worker()
            self._pump()

    # -- dispatch ----------------------------------------------------------

    def _outstanding(self) -> int:
        return sum(len(w.inflight) for w in self._workers.values())

    def _pump(self):
        """Assign pending keys to idle workers (callers hold the lock).
        One unit per worker at a time — workers execute serially, and
        single-assignment keeps orphan adoption and the straggler
        estimate exact."""
        if not self._pending:
            return
        for worker in list(self._workers.values()):
            if not self._pending:
                return
            if not worker.alive or worker.inflight:
                continue
            key = self._pending.pop(0)
            entry = self._tasks.get(key)
            if entry is None:
                continue
            task, timeout = entry
            self._attempts[key] = self._attempts.get(key, 0) + 1
            worker.inflight[key] = time.monotonic()
            try:
                worker.send(
                    {
                        "kind": "task",
                        "key": key,
                        "fn": callable_ref(task.fn),
                        "args": task.args,
                        "kwargs": task.kwargs,
                        "timeout": timeout,
                    }
                )
            except OSError:
                # undo the dispatch and let _drop_worker requeue cleanly
                self._attempts[key] -= 1
                worker.inflight.pop(key, None)
                self._pending.insert(0, key)
                self._drop_worker(worker)
                return

    def submit(self, task, timeout: float | None = None) -> str:
        if self._closed:
            raise RuntimeError("executor is closed")
        with self._lock:
            self._tasks[task.key] = (task, timeout)
            self._copies[task.key] = self._copies.get(task.key, 0) + 1
            self._pending.append(task.key)
            self._pump()
        return task.key

    def _finish_copy(self, key: str) -> None:
        remaining = self._copies.get(key, 1) - 1
        if remaining <= 0:
            self._copies.pop(key, None)
            self._tasks.pop(key, None)
            self._attempts.pop(key, None)
        else:
            self._copies[key] = remaining

    # -- events ------------------------------------------------------------

    def next_event(self, timeout: float | None = None) -> UnitEvent | None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.1
            if deadline is not None:
                wait = min(wait, deadline - time.monotonic())
                if wait <= 0:
                    return None
            try:
                return self._events.get(timeout=max(wait, 0.005))
            except queue.Empty:
                pass
            with self._lock:
                if not self._pending and not self._outstanding():
                    if self._events.empty():
                        return None
                    continue
                starved = (
                    not self._workers
                    and time.monotonic() - self._last_worker_at
                    > self.connect_timeout
                )
                if starved:
                    # no worker has (re)connected within the budget:
                    # everything queued dies as a crash, not a hang
                    for key in sorted(set(self._pending)):
                        attempts = self._attempts.get(key, 1)
                        self._copies[key] = 1
                        self._finish_copy(key)
                        self._events.put(
                            UnitEvent(
                                key,
                                "err",
                                dict(CRASH_PAYLOAD),
                                0.0,
                                None,
                                attempts,
                            )
                        )
                    self._pending.clear()

    # -- control -----------------------------------------------------------

    def cancel(self, key: str) -> bool:
        with self._lock:
            before = len(self._pending)
            self._pending = [k for k in self._pending if k != key]
            dropped = before - len(self._pending)
            for _ in range(dropped):
                self._finish_copy(key)
            return dropped > 0

    def running(self) -> dict[str, float]:
        now = time.monotonic()
        elapsed: dict[str, float] = {}
        with self._lock:
            for worker in self._workers.values():
                for key, started in worker.inflight.items():
                    seconds = now - started
                    elapsed[key] = max(seconds, elapsed.get(key, 0.0))
        return elapsed

    def probe(self) -> ExecutorProbe:
        with self._lock:
            workers = [w for w in self._workers.values() if w.alive]
            idle = sum(1 for w in workers if not w.inflight)
            in_flight = self._outstanding()
            queued = len(self._pending)
            return ExecutorProbe(
                backend=self.backend,
                workers=len(workers),
                idle=idle,
                queued=queued,
                in_flight=in_flight,
                healthy=bool(workers) or (not queued and not in_flight),
                details={"address": self.address, "spawned": len(self._spawned)},
            )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        for worker in workers:
            try:
                worker.send({"kind": "shutdown"})
            except OSError:
                pass
        # Wake the accept thread and *join it before closing the server
        # fd*.  A thread blocked in (or about to enter) accept() still
        # holds the fd number; closing first would free the number for
        # the next executor's server socket, and the stale thread could
        # then steal that executor's worker connections.  shutdown()
        # makes any in-flight or future accept() on this socket fail
        # immediately, so the join is prompt.
        try:
            self._server.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        if self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=5.0)
        try:
            self._server.close()
        except OSError:
            pass
        for proc in self._spawned:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
        with self._lock:
            for worker in workers:
                try:
                    worker.sock.close()
                except OSError:
                    pass
            self._workers.clear()
            self._pending.clear()


def worker_main(address: str) -> int:
    """Entry point for ``repro worker --connect HOST:PORT``.

    Connects, handshakes, then executes tasks one at a time on the main
    thread (so :func:`~repro.eval.executors.base.unit_deadline` can arm
    ``SIGALRM``) until the coordinator says shutdown or hangs up.
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_msg(
        sock,
        {"kind": "hello", "pid": os.getpid(), "host": socket.gethostname()},
    )
    def _apply_config(config: dict) -> None:
        cache_cfg = config.get("cache")
        if cache_cfg:
            try:
                from repro.cache import configure

                configure(
                    root=cache_cfg.get("root"),
                    enabled=cache_cfg.get("enabled"),
                    salt=cache_cfg.get("salt"),
                )
            except Exception:
                pass  # cache stays environment-configured
        if config.get("timing"):
            timing.enable()

    # the config frame is handled inside the main loop rather than as a
    # fixed handshake step, so the worker never depends on frame order
    try:
        while True:
            try:
                msg = recv_msg(sock)
            except (ConnectionError, OSError, EOFError):
                return 0
            if not isinstance(msg, dict):
                continue
            kind = msg.get("kind")
            if kind == "shutdown":
                return 0
            if kind == "config":
                _apply_config(msg)
                continue
            if kind != "task":
                continue
            key = msg.get("key", "")
            try:
                fn = resolve_callable(msg["fn"])
            except Exception as exc:
                reply = {
                    "kind": "result",
                    "key": key,
                    "status": "err",
                    "value": error_payload(exc),
                    "wall_s": 0.0,
                    "metrics": None,
                    "pid": os.getpid(),
                }
                send_msg(sock, reply)
                continue
            status, value, wall_s, metrics = run_unit(
                fn, msg.get("args", ()), msg.get("kwargs", {}), msg.get("timeout")
            )
            reply = {
                "kind": "result",
                "key": key,
                "status": status,
                "value": value,
                "wall_s": wall_s,
                "metrics": metrics,
                "pid": os.getpid(),
            }
            try:
                send_msg(sock, reply)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                # the result would not cross the wire; report that instead
                send_msg(
                    sock,
                    {
                        "kind": "result",
                        "key": key,
                        "status": "err",
                        "value": error_payload(exc),
                        "wall_s": wall_s,
                        "metrics": metrics,
                        "pid": os.getpid(),
                    },
                )
    finally:
        try:
            sock.close()
        except OSError:
            pass
