"""Pluggable execution backends for the evaluation grid.

See :mod:`repro.eval.executors.base` for the contract.  Backends:

``inprocess``
    :class:`InprocessAsyncExecutor` — serial, on the caller's thread,
    deterministic to the bit.  What ``jobs=1`` uses.
``local``
    :class:`LocalPoolExecutor` — a ProcessPoolExecutor with the grid's
    crash-retry semantics.  The default for ``jobs>1``.
``socket`` / ``socket:HOST:PORT``
    :class:`SocketExecutor` — length-framed pickle over TCP; spawns
    local ``repro worker`` processes, or listens for external ones.
"""

from __future__ import annotations

from repro.eval.executors.base import (
    CRASH_PAYLOAD,
    Executor,
    ExecutorProbe,
    UnitEvent,
    resolve_jobs,
    resolve_timeout,
    run_unit,
    unit_deadline,
)
from repro.eval.executors.inprocess import InprocessAsyncExecutor
from repro.eval.executors.local import LocalPoolExecutor
from repro.eval.executors.socketexec import (
    SocketExecutor,
    parse_address,
    worker_main,
)

__all__ = [
    "CRASH_PAYLOAD",
    "Executor",
    "ExecutorProbe",
    "InprocessAsyncExecutor",
    "LocalPoolExecutor",
    "SocketExecutor",
    "UnitEvent",
    "parse_address",
    "resolve_executor",
    "resolve_jobs",
    "resolve_timeout",
    "run_unit",
    "unit_deadline",
    "worker_main",
]


def resolve_executor(spec: str, jobs: int | None = None) -> Executor:
    """Build a backend from a spec string (the CLI's ``--executor``).

    ``"inprocess"`` → serial in-process; ``"local"`` → process pool with
    ``jobs`` workers; ``"socket"`` → TCP coordinator spawning ``jobs``
    local workers; ``"socket:HOST:PORT"`` → TCP coordinator bound to an
    explicit address, waiting for externally launched workers.
    """
    if spec == "inprocess":
        return InprocessAsyncExecutor()
    if spec == "local":
        return LocalPoolExecutor(workers=jobs)
    if spec == "socket":
        return SocketExecutor(spawn=resolve_jobs(jobs))
    if spec.startswith("socket:"):
        host, port = parse_address(spec[len("socket:") :])
        return SocketExecutor(host=host, port=port)
    raise ValueError(
        f"unknown executor spec {spec!r}; want 'inprocess', 'local', "
        "'socket', or 'socket:HOST:PORT'"
    )
