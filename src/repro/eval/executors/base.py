"""The executor contract: what every grid backend must provide.

The evaluation grid (:mod:`repro.eval.grid`) is a thin façade over this
interface.  A backend accepts keyed work units, runs them *somewhere*
(in-process, on a local process pool, on workers connected over TCP) and
streams completion events back; the façade owns ordering, journaling,
failure collection and work-stealing, so every backend gets those for
free and all three stay behaviourally interchangeable — the conformance
suite (``tests/test_executors.py``) runs one battery against each.

The contract, in full:

* :meth:`Executor.submit` — accept one :class:`~repro.eval.grid.GridTask`
  (duck-typed: ``key``/``fn``/``args``/``kwargs``) with an optional
  per-unit wall-clock budget and return its key.  Submitting the *same*
  key again is legal and means "run another copy" — the façade uses this
  for speculative work-stealing; one completion event arrives per copy
  and the façade keeps the first.
* :meth:`Executor.next_event` — block up to ``timeout`` seconds for the
  next :class:`UnitEvent` (``None`` on timeout).  Events may arrive in
  any order; the façade re-orders by key.
* :meth:`Executor.cancel` — best-effort: drop every *queued* copy of a
  key.  Copies already running cannot be recalled (their events are
  simply discarded by the façade).
* :meth:`Executor.probe` — a capability/health snapshot
  (:class:`ExecutorProbe`): live workers, idle workers, queue depth.
  The façade steals only when ``idle > 0``.
* :meth:`Executor.running` — ``{key: seconds since dispatch}`` for
  units currently on a worker, feeding the straggler estimate.
* :meth:`Executor.close` — release workers/pools.  An executor is
  reusable across many ``run_grid`` calls until closed (the report runs
  every section against one executor, so socket workers stay warm).

Executors report unit *outcomes as data*: an exception inside a unit
becomes a ``status="err"`` event carrying the serialized
:mod:`repro.errors` payload, never a raise in the parent.  The worker
entry point that guarantees this, :func:`run_unit`, lives here so the
local pool and the socket worker share one implementation (and one
``SIGALRM`` deadline).
"""

from __future__ import annotations

import os
import signal
import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GridTimeout, error_payload
from repro.utils import timing


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a job count: argument, else ``REPRO_JOBS``, else cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_timeout(timeout: float | None = None) -> float | None:
    """Resolve the per-unit timeout: argument, else ``REPRO_UNIT_TIMEOUT``.

    ``None`` or a non-positive value means no deadline.
    """
    if timeout is None:
        env = os.environ.get("REPRO_UNIT_TIMEOUT", "").strip()
        if not env:
            return None
        try:
            timeout = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_UNIT_TIMEOUT must be a number, got {env!r}"
            ) from None
    return timeout if timeout and timeout > 0 else None


@contextmanager
def unit_deadline(seconds: float | None):
    """Arm a ``SIGALRM`` deadline around one unit, when the platform and
    calling context allow it (main thread, Unix).  Pool and socket
    workers execute units on their main thread, so the deadline is armed
    there even when the parent could not arm one for itself."""
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(_signum, _frame):
        raise GridTimeout(
            f"work unit exceeded its {seconds:g}s wall-clock budget",
            seconds=seconds,
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_unit(fn, args, kwargs, timeout):
    """Worker entry shared by every out-of-process backend.

    Returns ``("ok", result, wall_s, metrics)`` or ``("err", payload,
    wall_s, metrics)`` where ``payload`` is an
    :func:`repro.errors.error_payload` — raising across the transport
    boundary would lose the taxonomy's detail fields — and ``metrics``
    is the worker's per-unit :func:`repro.utils.timing.snapshot` (or
    ``None`` with instrumentation off).  The recorder is reset at unit
    entry so the snapshot is a clean delta: with the ``fork`` start
    method a worker inherits the parent's accumulated counters, and a
    reused worker process carries its previous units' — either would
    double-count on merge.
    """
    if timing.ENABLED:
        timing.reset()
    watch = timing.stopwatch()
    try:
        with unit_deadline(timeout):
            result = fn(*args, **kwargs)
    except Exception as exc:  # noqa: BLE001 — the whole point is containment
        metrics = timing.snapshot() if timing.ENABLED else None
        return ("err", error_payload(exc), watch.seconds, metrics)
    metrics = timing.snapshot() if timing.ENABLED else None
    return ("ok", result, watch.seconds, metrics)


#: payload standing in for a unit whose worker died without reporting
CRASH_PAYLOAD = {
    "type": "WorkerCrash",
    "module": "repro.errors",
    "message": "worker process died (killed or crashed) while running "
    "this unit or its pool-mate",
}


@dataclass
class UnitEvent:
    """One completed copy of a work unit, as reported by a backend.

    ``status`` is ``"ok"`` (``value`` is the unit's result) or ``"err"``
    (``value`` is an :func:`repro.errors.error_payload` dict — including
    the synthetic ``WorkerCrash`` payload for units whose worker died
    past the retry budget).  ``metrics`` is the worker's per-unit timing
    snapshot for parent-side merge; ``attempts`` counts how many times
    the backend dispatched the key; ``worker`` names the worker that
    produced the event (``""`` for in-process execution).
    """

    key: str
    status: str
    value: Any = None
    wall_s: float = 0.0
    metrics: dict | None = None
    attempts: int = 1
    worker: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ExecutorProbe:
    """A point-in-time capability/health snapshot of a backend.

    ``workers`` counts live workers, ``idle`` those with nothing
    assigned (the work-stealing budget), ``queued`` units waiting for a
    worker and ``in_flight`` units dispatched but unreported.
    ``healthy`` is the backend's own verdict — a socket executor with
    every worker gone reports ``False`` while it waits for reconnects.
    """

    backend: str
    workers: int
    idle: int
    queued: int
    in_flight: int
    healthy: bool = True
    details: dict = field(default_factory=dict)


class Executor(ABC):
    """Abstract base for grid execution backends (see the module doc for
    the full contract).  Concrete backends: ``LocalPoolExecutor``,
    ``InprocessAsyncExecutor``, ``SocketExecutor``."""

    backend = "abstract"

    @abstractmethod
    def submit(self, task, timeout: float | None = None) -> str:
        """Accept one keyed work unit; return its key immediately."""

    @abstractmethod
    def next_event(self, timeout: float | None = None) -> UnitEvent | None:
        """The next completion event, or ``None`` after ``timeout``
        seconds with nothing to report (``timeout=None`` blocks until an
        event arrives; returns ``None`` only when nothing is pending)."""

    @abstractmethod
    def cancel(self, key: str) -> bool:
        """Drop every queued copy of ``key``; True if anything was
        dropped.  Running copies are unaffected."""

    @abstractmethod
    def probe(self) -> ExecutorProbe:
        """Capability/health snapshot."""

    def running(self) -> dict[str, float]:
        """``{key: seconds since dispatch}`` for units on a worker."""
        return {}

    def close(self) -> None:
        """Release workers and transports; the executor is dead after."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
