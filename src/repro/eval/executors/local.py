"""The local process-pool backend.

``LocalPoolExecutor`` wraps a :class:`concurrent.futures.ProcessPoolExecutor`
and carries over the grid's pre-executor fault semantics unchanged:

* each unit runs under :func:`~repro.eval.executors.base.run_unit`
  (``SIGALRM`` deadline in the worker, outcome-as-data, per-unit metrics
  snapshot);
* a worker lost to a SIGKILL/segfault breaks the whole pool; the
  executor rebuilds it (``grid.pool_rebuilds``), resubmits every unit
  that never reported back (``grid.retried_units``) after a doubling
  backoff, and turns survivors into ``WorkerCrash`` events only once a
  key exhausts its ``retries`` budget;
* with the default ``fork`` start method workers inherit the parent's
  warm in-process caches at pool creation, and the persistent artifact
  cache covers everything else.

Unlike the pre-executor grid, the pool persists across ``run_grid``
calls until :meth:`close` — the report drives all of its sections
through one executor, so workers stay warm (JIT segments, target cache)
from section to section instead of being forked fresh per table.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures.process import BrokenProcessPool

from repro.errors import error_payload
from repro.eval.executors.base import (
    CRASH_PAYLOAD,
    Executor,
    ExecutorProbe,
    UnitEvent,
    resolve_jobs,
    run_unit,
)
from repro.utils import timing


class LocalPoolExecutor(Executor):
    backend = "local"

    def __init__(
        self,
        workers: int | None = None,
        retries: int = 2,
        backoff: float = 0.25,
    ):
        self.workers = resolve_jobs(workers)
        self.retries = retries
        self._backoff = backoff
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict = {}  # Future -> key
        self._started: dict = {}  # Future -> first-seen-running timestamp
        self._attempts: dict[str, int] = {}  # key -> dispatch count
        self._tasks: dict = {}  # key -> (task, timeout), for resubmission
        self._copies: dict[str, int] = {}  # key -> live future count
        self._events: deque = deque()
        self._closed = False

    # -- dispatch ----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def submit(self, task, timeout: float | None = None) -> str:
        if self._closed:
            raise RuntimeError("executor is closed")
        self._tasks[task.key] = (task, timeout)
        self._dispatch(task.key)
        return task.key

    def _dispatch(self, key: str) -> None:
        task, timeout = self._tasks[key]
        self._attempts[key] = self._attempts.get(key, 0) + 1
        future = self._ensure_pool().submit(
            run_unit, task.fn, task.args, task.kwargs, timeout
        )
        self._futures[future] = key
        self._copies[key] = self._copies.get(key, 0) + 1

    def _finish_copy(self, key: str) -> None:
        remaining = self._copies.get(key, 1) - 1
        if remaining <= 0:
            self._copies.pop(key, None)
            self._tasks.pop(key, None)
            self._attempts.pop(key, None)
        else:
            self._copies[key] = remaining

    # -- events ------------------------------------------------------------

    def _stamp_running(self) -> None:
        now = time.monotonic()
        for future in self._futures:
            if future not in self._started and future.running():
                self._started[future] = now

    def next_event(self, timeout: float | None = None) -> UnitEvent | None:
        while True:
            if self._events:
                return self._events.popleft()
            if not self._futures:
                return None
            done, _ = futures_wait(
                list(self._futures),
                timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            self._stamp_running()
            if not done:
                return None
            broken = False
            orphans: list[str] = []
            for future in done:
                key = self._futures.pop(future)
                self._started.pop(future, None)
                attempts = self._attempts.get(key, 1)
                try:
                    status, payload, wall_s, metrics = future.result()
                except CancelledError:
                    self._finish_copy(key)
                    continue
                except BrokenProcessPool:
                    broken = True
                    orphans.append(key)
                    continue
                except BaseException as exc:  # e.g. an unpicklable result
                    self._events.append(
                        UnitEvent(
                            key, "err", error_payload(exc), 0.0, None, attempts
                        )
                    )
                    self._finish_copy(key)
                    continue
                self._events.append(
                    UnitEvent(key, status, payload, wall_s, metrics, attempts)
                )
                self._finish_copy(key)
            if broken:
                self._rebuild(orphans)

    def _rebuild(self, orphans: list[str]) -> None:
        """The pool broke: every in-flight unit is an orphan.  Resubmit
        the ones with retry budget left, crash-fail the rest."""
        timing.add("grid.pool_rebuilds")
        orphans.extend(self._futures.values())
        pool, self._pool = self._pool, None
        self._futures.clear()
        self._started.clear()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        time.sleep(self._backoff)
        self._backoff = min(self._backoff * 2, 5.0)
        for key in sorted(set(orphans)):
            attempts = self._attempts.get(key, 1)
            if attempts > self.retries:
                self._events.append(
                    UnitEvent(key, "err", dict(CRASH_PAYLOAD), 0.0, None, attempts)
                )
                # forget every lost copy of the key at once
                self._copies[key] = 1
                self._finish_copy(key)
            else:
                timing.add("grid.retried_units")
                self._copies[key] = self._copies.get(key, 1) - 1
                self._dispatch(key)

    # -- control -----------------------------------------------------------

    def cancel(self, key: str) -> bool:
        cancelled = False
        for future, owner in list(self._futures.items()):
            if owner == key and future.cancel():
                self._futures.pop(future, None)
                self._started.pop(future, None)
                self._finish_copy(key)
                cancelled = True
        return cancelled

    def running(self) -> dict[str, float]:
        self._stamp_running()
        now = time.monotonic()
        elapsed: dict[str, float] = {}
        for future, started in self._started.items():
            key = self._futures.get(future)
            if key is not None:
                seconds = now - started
                elapsed[key] = max(seconds, elapsed.get(key, 0.0))
        return elapsed

    def probe(self) -> ExecutorProbe:
        self._stamp_running()
        in_flight = len(self._started)
        queued = len(self._futures) - in_flight
        return ExecutorProbe(
            backend=self.backend,
            workers=self.workers,
            idle=max(0, self.workers - len(self._futures)),
            queued=queued,
            in_flight=in_flight,
            healthy=not self._closed,
            details={"retries": self.retries},
        )

    def close(self) -> None:
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._futures.clear()
        self._started.clear()
        self._events.clear()
