"""Design-choice ablations called out in DESIGN.md.

A1 — *Why support EAPs with temporal scheduling?* (section 4.6).  The
paper argues that treating an explicitly advanced pipeline as an ordinary
pipeline "reduces scheduling opportunities, because sub-operations can be
scheduled where complete operations cannot" and operations in different
EAPs become hard to overlap.  We compile for the real i860 model
(sub-operations + temporal scheduling) and for a variant whose escapes
emit monolithic operations owning the fp issue slot for their whole
duration, and compare simulated cycles.

Measured shape (recorded in EXPERIMENTS.md): sub-operation scheduling
wins clearly where *dual-operation* parallelism exists — several
multiply/add streams per block, the workload the i860 was built for
(:func:`ablation_temporal_dual`); on single-stream fp loops the explicit
advances cost issue bandwidth that even temporal scheduling cannot hide,
and the monolithic model ties or wins slightly (:func:`ablation_temporal`
on kernel 3).  Both back ends always compute identical results.

A2 — the maximum-distance list scheduling heuristic (section 4.2) against
naive code-thread (FIFO) order.

A3 — the Gross-Hennessy delay-slot filling pass (section 4.4's suggested
extension) against Marion's always-nops policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro
from repro.eval.common import compile_kernel
from repro.eval.grid import (
    GridFailure,
    GridOptions,
    GridTask,
    run_grid,
    with_jobs,
)
from repro.options import CompileOptions
from repro.targets import load_cached_variant
from repro.targets.i860 import I860_MARIL, build_i860
from repro.utils.tables import TextTable
from repro.workloads import LIVERMORE_KERNELS, kernel_by_id

_FP_KERNELS = (1, 3, 5, 7, 12)

#: several independent multiply and add streams per block: the
#: dual-operation shape the i860's long instructions target
DUAL_OPERATION_RICH = """
double a[64], b[64], c[64];
void init(void) {
    int i;
    for (i = 0; i < 64; i++) { a[i] = i * 0.5; b[i] = i * 0.25; c[i] = 0.0; }
}
double kernel(int loop, int n) {
    int l, k;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (k = 0; k < n; k = k + 2) {
            c[k]   = a[k] * b[k]     + (a[k] + b[k]);
            c[k+1] = a[k+1] * b[k+1] + (a[k+1] + b[k+1]);
        }
    }
    for (k = 0; k < n; k++) { s = s + c[k]; }
    return s;
}
double bench(int loop, int n) { init(); return kernel(loop, n); }
"""


@dataclass
class AblationRow:
    kernel_id: int
    baseline_cycles: int
    variant_cycles: int

    @property
    def ratio(self) -> float:
        return self.variant_cycles / max(1, self.baseline_cycles)


#: eap -> TargetMachine; the i860 EAP variants are not served by
#: repro.targets.load_target, so they get their own process-local memo
_I860_VARIANTS: dict[bool, object] = {}


def _i860(eap: bool):
    target = _I860_VARIANTS.get(eap)
    if target is None:
        # the disk layer keys the two EAP variants apart by name, so a
        # warm report builds neither
        target = load_cached_variant(
            "i860" if eap else "i860-scalar",
            I860_MARIL,
            lambda: build_i860(eap=eap),
        )
        _I860_VARIANTS[eap] = target
    return target


def _compile_for(target, source: str, strategy: str):
    # through the batch memo (and the exe layer of the artifact cache,
    # since the cached variants carry content keys) so shared scopes
    # reuse warmed executables instead of re-warming per section
    return compile_kernel(
        source, target, CompileOptions(strategy=strategy)
    )


def _marginal_kernel_cycles(executable, loop: int, n: int) -> tuple[int, float]:
    """Cycles attributable to the timed kernel loops alone: difference of a
    (2*loop) run and a (loop) run, cancelling the full-size `init` phase."""
    twice = repro.simulate(executable, "bench", args=(2 * loop, n))
    once = repro.simulate(executable, "bench", args=(loop, n))
    return twice.cycles - once.cycles, once.return_value["double"]


def _temporal_unit(kernel_id: int, strategy: str, scale: float) -> AblationRow:
    """One kernel's EAP-vs-monolithic measurement (picklable grid unit)."""
    spec = kernel_by_id(kernel_id)
    loop, n = spec.args
    n = max(4, int(n * scale))
    eap_exe = _compile_for(_i860(True), spec.source, strategy)
    scalar_exe = _compile_for(_i860(False), spec.source, strategy)
    eap_cycles, eap_value = _marginal_kernel_cycles(eap_exe, loop, n)
    scalar_cycles, scalar_value = _marginal_kernel_cycles(scalar_exe, loop, n)
    assert abs(eap_value - scalar_value) < 1e-9
    return AblationRow(spec.id, eap_cycles, scalar_cycles)


def ablation_temporal(
    kernel_ids=_FP_KERNELS,
    strategy: str = "postpass",
    scale: float = 0.25,
    jobs: int | None = None,
    options: GridOptions | None = None,
) -> list[AblationRow]:
    """EAP sub-operation scheduling vs. ordinary-pipeline operations."""
    ids = [spec.id for spec in LIVERMORE_KERNELS if spec.id in kernel_ids]
    if jobs is None or jobs == 1:
        # warm the variant memo so the serial path builds each target once
        _i860(True), _i860(False)
    return run_grid(
        [
            GridTask(
                f"ablation_a1/i860/{strategy}/K{kid}",
                _temporal_unit,
                (kid, strategy, scale),
            )
            for kid in ids
        ],
        with_jobs(options, jobs),
        label="ablation_temporal",
    )


def ablation_temporal_dual(strategy: str = "postpass", n: int = 64) -> AblationRow:
    """The headline A1 measurement on dual-operation-rich code."""
    eap_exe = _compile_for(_i860(True), DUAL_OPERATION_RICH, strategy)
    scalar_exe = _compile_for(_i860(False), DUAL_OPERATION_RICH, strategy)
    eap_cycles, eap_value = _marginal_kernel_cycles(eap_exe, 1, n)
    scalar_cycles, scalar_value = _marginal_kernel_cycles(scalar_exe, 1, n)
    assert abs(eap_value - scalar_value) < 1e-9
    return AblationRow(0, eap_cycles, scalar_cycles)


def _heuristic_unit(
    kernel_id: int, target: str, strategy: str, scale: float
) -> AblationRow:
    spec = kernel_by_id(kernel_id)
    loop, n = spec.args
    n = max(4, int(n * scale))
    maxdist_exe = compile_kernel(
        spec.source,
        target,
        CompileOptions(strategy=strategy, heuristic="maxdist"),
    )
    fifo_exe = compile_kernel(
        spec.source,
        target,
        CompileOptions(strategy=strategy, heuristic="fifo"),
    )
    maxdist_cycles, _ = _marginal_kernel_cycles(maxdist_exe, loop, n)
    fifo_cycles, _ = _marginal_kernel_cycles(fifo_exe, loop, n)
    return AblationRow(spec.id, maxdist_cycles, fifo_cycles)


def ablation_heuristic(
    kernel_ids=_FP_KERNELS,
    target: str = "r2000",
    strategy: str = "postpass",
    scale: float = 0.25,
    jobs: int | None = None,
    options: GridOptions | None = None,
) -> list[AblationRow]:
    """Maximum-distance priority vs. FIFO ready-list order."""
    ids = [spec.id for spec in LIVERMORE_KERNELS if spec.id in kernel_ids]
    return run_grid(
        [
            GridTask(
                f"ablation_a2/{target}/{strategy}/K{kid}",
                _heuristic_unit,
                (kid, target, strategy, scale),
            )
            for kid in ids
        ],
        with_jobs(options, jobs),
        label="ablation_heuristic",
    )


def _delay_fill_unit(
    kernel_id: int, target: str, strategy: str, scale: float
) -> AblationRow:
    spec = kernel_by_id(kernel_id)
    loop, n = spec.args
    n = max(4, int(n * scale))
    filled_exe = compile_kernel(
        spec.source,
        target,
        CompileOptions(strategy=strategy, fill_delay_slots=True),
    )
    nops_exe = compile_kernel(
        spec.source, target, CompileOptions(strategy=strategy)
    )
    filled_cycles, filled_value = _marginal_kernel_cycles(filled_exe, loop, n)
    nops_cycles, nops_value = _marginal_kernel_cycles(nops_exe, loop, n)
    assert abs(filled_value - nops_value) < 1e-9
    return AblationRow(spec.id, filled_cycles, nops_cycles)


def ablation_delay_fill(
    kernel_ids=_FP_KERNELS,
    target: str = "r2000",
    strategy: str = "postpass",
    scale: float = 0.25,
    jobs: int | None = None,
    options: GridOptions | None = None,
) -> list[AblationRow]:
    """Delay slots filled with useful work (baseline) vs. nops (variant)."""
    ids = [spec.id for spec in LIVERMORE_KERNELS if spec.id in kernel_ids]
    return run_grid(
        [
            GridTask(
                f"ablation_a3/{target}/{strategy}/K{kid}",
                _delay_fill_unit,
                (kid, target, strategy, scale),
            )
            for kid in ids
        ],
        with_jobs(options, jobs),
        label="ablation_delay_fill",
    )


def render(rows: list, title: str, variant_label: str) -> str:
    table = TextTable(
        ["Kernel", "baseline kc", f"{variant_label} kc", "variant/baseline"],
        title=title,
    )
    failures = []
    for row in rows:
        if isinstance(row, GridFailure):
            failures.append(row)
            continue
        table.add_row(
            row.kernel_id,
            f"{row.baseline_cycles / 1000:.1f}",
            f"{row.variant_cycles / 1000:.1f}",
            f"{row.ratio:.3f}",
        )
    text = str(table)
    if failures:
        text += "\nFAILED units:\n" + "\n".join(
            f"  {failure.summary()}" for failure in failures
        )
    return text
