"""The run journal: checkpoint/resume for the evaluation grid.

Every :class:`~repro.eval.grid.GridTask` has a stable string key.  As the
grid completes units it appends one JSONL record per unit to the journal
(flushed and fsynced, so a SIGKILL loses at most the in-flight units),
and a later run opened on the same journal — ``repro report --resume
JOURNAL`` or ``REPRO_JOURNAL=JOURNAL`` — reuses every recorded success
and re-runs only the missing or failed units.  Because the recorded
values round-trip through JSON exactly (ints, ``repr``-exact floats,
tuples and dataclasses are all preserved), a resumed report renders
tables byte-identical to a single-shot run.

Record schema (one JSON object per line):

``{"schema": 1, "kind": "header", "config": {...}}``
    First line.  ``config`` captures the run parameters that change
    results (scale, cache, target); resuming with a different config
    raises :class:`JournalError` instead of silently mixing runs.

``{"schema": 1, "key": K, "status": "ok", "wall_s": S, "result": R}``
    A completed unit.  ``result`` uses the value codec below.  Units
    completed by a remote worker carry ``"by": WORKER`` naming it (the
    field is omitted for in-process execution).

``{"schema": 1, "key": K, "status": "fail", "wall_s": S, "error": E,
"attempts": N}``
    A failed unit; ``error`` is an :func:`repro.errors.error_payload`.
    Failed units are re-run on resume (the record is kept for the
    post-mortem).

Value codec: JSON scalars pass through; lists, tuples and dicts are
tagged containers (``{"L": ...}``, ``{"T": ...}``, ``{"D": [[k, v],
...]}``); dataclasses become ``{"C": "module:QualName", "F":
{field: value}}`` and are reconstructed by re-importing the class.
"""

from __future__ import annotations

import dataclasses
import functools
import importlib
import json
import os
from typing import Any

from repro.errors import JournalError

SCHEMA = 1

#: sentinel distinguishing "no journal entry" from a recorded None
MISSING = object()


def encode_value(value: Any) -> Any:
    """Encode ``value`` into the JSON-safe tagged form described above."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return {"L": [encode_value(v) for v in value]}
    if isinstance(value, tuple):
        return {"T": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "D": [[encode_value(k), encode_value(v)] for k, v in value.items()]
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "C": f"{cls.__module__}:{cls.__qualname__}",
            "F": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    raise JournalError(
        f"cannot journal a value of type {type(value).__name__}: {value!r}"
    )


def decode_value(obj: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(obj, dict):
        if "L" in obj:
            return [decode_value(v) for v in obj["L"]]
        if "T" in obj:
            return tuple(decode_value(v) for v in obj["T"])
        if "D" in obj:
            return {decode_value(k): decode_value(v) for k, v in obj["D"]}
        if "C" in obj:
            module_name, _, qualname = obj["C"].partition(":")
            try:
                module = importlib.import_module(module_name)
                cls = functools.reduce(getattr, qualname.split("."), module)
            except (ImportError, AttributeError) as exc:
                raise JournalError(
                    f"cannot reconstruct journalled {obj['C']}: {exc}"
                ) from None
            fields = {k: decode_value(v) for k, v in obj["F"].items()}
            return cls(**fields)
    return obj


class Journal:
    """An append-only JSONL checkpoint of completed grid units.

    Opening an existing journal loads its records; opening a fresh path
    creates the file with a header line.  ``config`` is compared against
    the existing header (when both are non-empty) so a journal recorded
    at one scale cannot poison a resume at another.
    """

    def __init__(self, path: str, config: dict | None = None):
        self.path = str(path)
        self.config = dict(config or {})
        self._done: dict[str, Any] = {}
        self._failed: dict[str, dict] = {}
        self._load()
        self._handle = open(self.path, "a")
        if self._fresh:
            self._append(
                {"schema": SCHEMA, "kind": "header", "config": self.config}
            )

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        self._fresh = True
        if not os.path.exists(self.path):
            return
        with open(self.path) as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            return
        self._fresh = False
        for number, line in enumerate(lines, 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # a torn final line from a killed run: everything before
                # it is intact, so skip it rather than refuse the resume
                if number == len(lines):
                    continue
                raise JournalError(
                    f"{self.path}:{number}: corrupt journal record"
                ) from None
            if record.get("kind") == "header":
                existing = record.get("config") or {}
                if self.config and existing and existing != self.config:
                    raise JournalError(
                        f"{self.path}: journal was recorded with config "
                        f"{existing}, cannot resume with {self.config}"
                    )
                if existing and not self.config:
                    self.config = existing
                continue
            key = record.get("key")
            if not key:
                continue
            if record.get("status") == "ok":
                self._done[key] = decode_value(record.get("result"))
                self._failed.pop(key, None)
            else:  # a later success overrides an earlier failure
                if key not in self._done:
                    self._failed[key] = record

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._done)

    def lookup(self, key: str) -> Any:
        """The recorded result for ``key``, or :data:`MISSING`."""
        return self._done.get(key, MISSING)

    def done_keys(self) -> set:
        """Keys with a recorded success — what a joining worker must
        not redo.  This is the grid's coordination substrate: any
        process holding the journal can tell finished work from
        orphaned work without talking to the worker that died."""
        return set(self._done)

    def failed(self, key: str) -> dict | None:
        """The last failure record for ``key`` (no success since), if any."""
        return self._failed.get(key)

    # -- recording --------------------------------------------------------

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_ok(
        self, key: str, result: Any, wall_s: float, by: str = ""
    ) -> None:
        self._done[key] = result
        self._failed.pop(key, None)
        record = {
            "schema": SCHEMA,
            "key": key,
            "status": "ok",
            "wall_s": round(wall_s, 6),
            "result": encode_value(result),
        }
        if by:
            # which worker produced the value — forensics for multi-host
            # runs; absent for in-process execution so serial journals
            # stay byte-stable across the executor refactor
            record["by"] = by
        self._append(record)

    def record_failure(
        self, key: str, error: dict, wall_s: float, attempts: int = 1
    ) -> None:
        record = {
            "schema": SCHEMA,
            "key": key,
            "status": "fail",
            "wall_s": round(wall_s, 6),
            "attempts": attempts,
            "error": error,
        }
        self._failed[key] = record
        self._append(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
