"""Table 1 — Maril machine description statistics.

The paper reports, per target, the size of each description section and
counts of the special constructs (clocks, class elements, classes, aux
latencies, glue transformations, funcs and their C line counts).  We
compute the same statistics from our descriptions; absolute sizes differ
from the original's (different instruction coverage) but the *shape* —
the i860 description dwarfing the others on every special-construct row —
is the reproduced result.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.maril import parse_maril
from repro.targets import load_target, maril_source
from repro.utils.tables import TextTable


@dataclass
class DescriptionStats:
    target: str
    declare_lines: int = 0
    cwvm_lines: int = 0
    instr_lines: int = 0
    instructions: int = 0
    clocks: int = 0
    elements: int = 0
    classed_instructions: int = 0
    aux_latencies: int = 0
    glue_transformations: int = 0
    funcs: int = 0
    func_python_lines: int = 0


def _section_lines(text: str) -> dict[str, int]:
    """Count non-blank lines inside each section's braces."""
    counts = {"declare": 0, "cwvm": 0, "instr": 0}
    section = None
    depth = 0
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if section is None:
            for name in counts:
                if line.startswith(name):
                    section = name
                    depth = line.count("{") - line.count("}")
                    break
            continue
        depth += line.count("{") - line.count("}")
        if depth <= 0:
            section = None
            continue
        counts[section] += 1
    return counts


def description_stats(target_name: str) -> DescriptionStats:
    text = maril_source(target_name)
    description = parse_maril(text, filename=f"<{target_name}>")
    target = load_target(target_name)

    lines = _section_lines(text)
    stats = DescriptionStats(
        target=target_name,
        declare_lines=lines["declare"],
        cwvm_lines=lines["cwvm"],
        instr_lines=lines["instr"],
        instructions=len(description.instr_decls()),
        clocks=len(target.clocks),
        elements=len(target.elements),
        classed_instructions=sum(
            1 for d in description.instr_decls() if d.classes
        ),
        aux_latencies=len(description.aux_decls()),
        glue_transformations=len(description.glue_decls()),
        funcs=len(target.funcs),
        func_python_lines=sum(
            len(inspect.getsource(fn).splitlines())
            for fn in target.funcs.values()
        ),
    )
    return stats


def table1(
    targets=("m88000", "r2000", "i860"),
    jobs: int | None = None,
    options=None,
) -> str:
    """Render the reproduced Table 1."""
    from repro.eval.grid import GridFailure, GridTask, run_grid, with_jobs

    results = run_grid(
        [
            GridTask(f"table1/{name}", description_stats, (name,))
            for name in targets
        ],
        with_jobs(options, jobs),
        label="table1",
    )
    stats = [s for s in results if not isinstance(s, GridFailure)]
    failed = [s for s in results if isinstance(s, GridFailure)]
    table = TextTable(
        ["Section / item"] + [s.target for s in stats],
        title="Table 1: Maril machine description statistics",
    )
    rows = [
        ("Declare lines", "declare_lines"),
        ("Cwvm lines", "cwvm_lines"),
        ("Instr lines", "instr_lines"),
        ("%instr directives", "instructions"),
        ("Clocks", "clocks"),
        ("Elements", "elements"),
        ("Classed sub-ops", "classed_instructions"),
        ("Aux lats", "aux_latencies"),
        ("Glue xforms", "glue_transformations"),
        ("funcs", "funcs"),
        ("func Python lines", "func_python_lines"),
    ]
    for label, attr in rows:
        table.add_row(label, *[getattr(s, attr) for s in stats])
    text = str(table)
    if failed:
        text += "\nFAILED targets:\n" + "\n".join(
            f"  {failure.summary()}" for failure in failed
        )
    return text
