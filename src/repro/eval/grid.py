"""Fault-tolerant fan-out for the evaluation harness — a façade over
pluggable executors.

The paper's evaluation is a grid of independent (kernel × strategy ×
target) compile-and-simulate work units.  :func:`run_grid` fans a list
of such units out across an execution backend (see
:mod:`repro.eval.executors`) and returns the results **in submission
order** regardless of completion order, so tables render identically at
any job count and on any backend.  With ``jobs=1`` (or a single work
unit) it runs on the serial in-process backend — no pool, no pickling,
bit-identical behaviour to the pre-parallel harness.

Every unit is a keyed :class:`GridTask`; the key (a stable
``section/target/strategy/kernel`` string) names the unit in journals,
failure cells and logs.  The façade owns everything that must behave
identically across backends, all configured through one
:class:`GridOptions` record:

* **backend selection** (``executor``): ``None`` picks the serial
  in-process backend for one job/unit and a local process pool
  otherwise; a spec string (``"local"``, ``"inprocess"``, ``"socket"``,
  ``"socket:HOST:PORT"``) builds a backend owned (and closed) by this
  call; an :class:`~repro.eval.executors.Executor` *instance* is used
  as-is and left open, so one warm pool or socket fleet can serve many
  grids;
* **per-unit timeout** (``timeout`` / ``REPRO_UNIT_TIMEOUT``): each unit
  runs under a ``SIGALRM`` deadline in its worker and raises
  :class:`~repro.errors.GridTimeout` when it blows its wall-clock
  budget;
* **crash containment** (``retries`` / ``backoff``): a worker lost to a
  SIGKILL/segfault costs only its in-flight units — the backend retries
  them (pool rebuild, or adoption by a surviving socket worker) and
  only after ``retries`` extra attempts turns them into failures;
* **structured failures** (``failures="collect"``): instead of raising
  in the parent, a failed unit yields a :class:`GridFailure` in its
  result slot, carrying the serialized ``repro.errors`` taxonomy
  across the process boundary; collected failures land on the run's
  :class:`FailureCollector` (``collector=``), not in module-global
  state, so concurrent or nested grids cannot corrupt each other;
* **checkpoint/resume** (``journal``): completed units are appended to a
  :class:`~repro.eval.journal.Journal` (attributed to the worker that
  ran them) and skipped on the next run;
* **work-stealing** (``steal``): a unit whose wall clock exceeds
  ``STEAL_FACTOR`` × the p90 of completed units is speculatively
  resubmitted to an idle worker; the first completion event per key
  wins and the loser is discarded, so results stay deterministic —
  stealing changes *when* a value arrives, never *which* value fills
  the slot;
* **sharding** (``shard="K/N"``): only units whose key hashes to shard
  ``K`` of ``N`` run; the rest get inert ``ShardSkipped`` placeholders
  (not journalled, not collected).  N shard runs against one shared
  journal, then a merge run, reproduce the full tables.

Work units must be *top-level callables with picklable arguments and
results* (the local pool forks, so a parent that has already warmed the
target-build cache hands each worker a warm cache for free; socket
workers pull from the persistent artifact cache instead).

The job count resolves, in order: the explicit ``jobs`` option, the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace
from typing import Any, Callable, Sequence

from repro.errors import reconstruct_error
from repro.eval.executors import (
    CRASH_PAYLOAD,
    Executor,
    InprocessAsyncExecutor,
    LocalPoolExecutor,
    resolve_executor,
    resolve_jobs,
    resolve_timeout,
    run_unit,
    unit_deadline,
)
from repro.eval.journal import MISSING, Journal
from repro.options import UNSET, merge_legacy_kwargs
from repro.utils import timing

# back-compat aliases: these lived here before the executor layer
_run_unit = run_unit
_unit_deadline = unit_deadline
_CRASH_PAYLOAD = CRASH_PAYLOAD

#: seconds between event polls — each poll is also a work-stealing tick
POLL = 0.2
#: completed-unit wall samples needed before the p90 estimate is trusted
STEAL_MIN_SAMPLES = 5
#: a unit is a straggler past ``STEAL_FACTOR`` × the p90 wall estimate
STEAL_FACTOR = 1.5
#: never steal units younger than this many seconds
STEAL_FLOOR = 0.25


@dataclass(frozen=True)
class GridTask:
    """One keyed unit of evaluation work: ``fn(*args, **kwargs)``.

    ``key`` is the unit's stable identity — the same string the journal
    records, failure cells display and resume matches on.  Keys follow
    the ``section/target/strategy/kernel`` convention (for example
    ``table4/r2000/ips/K7``) and must be unique within one grid.

    ``batch_key`` opts the unit into batched dispatch: under
    ``GridOptions(batch=N)``, up to N pending units sharing the same
    non-empty ``batch_key`` run inside one worker task (see
    :func:`repro.eval.common.run_batch`), sharing that process's warmed
    executable memo.  Journalling, failure containment and result slots
    stay per-unit.  The empty default leaves the unit unbatched.
    """

    key: str
    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    batch_key: str = ""

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError(
                f"GridTask({self.key!r}): fn must be callable — the key "
                "string comes first"
            )

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass(frozen=True)
class GridFailure:
    """A work unit that did not produce a result.

    Appears in the result list (in the failed unit's slot) when
    ``failures="collect"``; renders as a FAILED cell in report tables.
    ``error_type``/``message``/``details`` carry the serialized
    ``repro.errors`` payload from the worker; ``attempts`` counts how
    many times the unit ran (> 1 after crash retries).
    """

    key: str
    error_type: str
    message: str
    wall_s: float = 0.0
    attempts: int = 1
    details: dict = field(default_factory=dict)
    traceback: str = ""

    def summary(self) -> str:
        where = ", ".join(
            f"{name}={value}" for name, value in sorted(self.details.items())
        )
        suffix = f" ({where})" if where else ""
        return f"{self.key}: {self.error_type}: {self.message}{suffix}"

    @property
    def payload(self) -> dict:
        """The :func:`repro.errors.error_payload`-shaped dict."""
        return {
            "type": self.error_type,
            "module": "repro.errors",
            "message": self.message,
            "details": dict(self.details),
            "traceback": self.traceback,
        }


class FailureCollector:
    """Run-scoped accumulator for :class:`GridFailure` records.

    Pass one via ``GridOptions(collector=...)`` (the report threads a
    single collector through all of its sections); grids given no
    collector fall back to a module-default sink that nothing reads.
    """

    def __init__(self) -> None:
        self._failures: list[GridFailure] = []

    def add(self, failure: GridFailure) -> None:
        self._failures.append(failure)

    def reset(self) -> None:
        del self._failures[:]

    def failures(self) -> list[GridFailure]:
        return list(self._failures)

    def __len__(self) -> int:
        return len(self._failures)


#: fallback collector for grids run without an explicit ``collector=``
#: (the deprecated ``reset_failures``/``collected_failures`` aliases
#: that used to read it are gone — build a :class:`FailureCollector`)
_default_collector = FailureCollector()


def resolve_batch(batch: int | None) -> int:
    """Resolve the batch width: argument, else ``REPRO_BATCH``, else 1."""
    if batch is None:
        import os

        env = os.environ.get("REPRO_BATCH", "").strip()
        if not env:
            return 1
        try:
            batch = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_BATCH must be an integer, got {env!r}"
            ) from None
    return max(1, int(batch))


def parse_shard(shard: str | None) -> tuple[int, int] | None:
    """``"K/N"`` → ``(K, N)`` with ``1 <= K <= N``; ``None`` passes."""
    if shard is None:
        return None
    try:
        k_text, _, n_text = str(shard).partition("/")
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise ValueError(
            f"bad shard spec {shard!r}: want 'K/N' (e.g. '2/4')"
        ) from None
    if n < 1 or not 1 <= k <= n:
        raise ValueError(f"bad shard spec {shard!r}: want 1 <= K <= N")
    return k, n


def shard_owns(key: str, k: int, n: int) -> bool:
    """Stable key→shard assignment: sha256, not ``hash()`` (which is
    salted per process and would scatter units across runs)."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:4], "big") % n == k - 1


@dataclass(frozen=True)
class GridOptions:
    """Consolidated knobs for one grid run.

    * ``jobs`` — worker processes (``None``: ``REPRO_JOBS`` or cpu count);
    * ``timeout`` — per-unit wall-clock seconds (``None``:
      ``REPRO_UNIT_TIMEOUT`` or unlimited);
    * ``retries`` — extra attempts for units lost to a dead worker;
    * ``backoff`` — seconds to wait before rebuilding a broken local
      pool (doubles per rebuild);
    * ``failures`` — ``"raise"`` re-raises the first failure in the
      parent (the pre-1.1 behaviour); ``"collect"`` puts a
      :class:`GridFailure` in the unit's result slot and keeps going;
    * ``journal`` — a :class:`~repro.eval.journal.Journal` to checkpoint
      completed units into and resume from;
    * ``executor`` — ``None`` (auto), a backend spec string, or a live
      :class:`~repro.eval.executors.Executor` to reuse across grids;
    * ``shard`` — ``"K/N"`` to run only this run's slice of the grid;
    * ``collector`` — the :class:`FailureCollector` receiving collected
      failures (``None``: a process-wide default);
    * ``steal`` — speculatively resubmit straggler units to idle
      workers (deterministic: first event per key wins);
    * ``batch`` — run up to this many pending units sharing a
      ``GridTask.batch_key`` inside one worker task, so they share a
      warmed per-process executable memo (``None``: ``REPRO_BATCH`` or
      1; 1 disables batching).  Results, journal entries and failures
      stay per-unit.
    """

    jobs: int | None = None
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.25
    failures: str = "raise"
    journal: Journal | None = None
    executor: str | Executor | None = None
    shard: str | None = None
    collector: FailureCollector | None = None
    steal: bool = True
    batch: int | None = None

    def __post_init__(self) -> None:
        if self.failures not in ("raise", "collect"):
            raise ValueError(
                f"GridOptions.failures must be 'raise' or 'collect', "
                f"got {self.failures!r}"
            )
        if self.batch is not None and int(self.batch) < 1:
            raise ValueError(
                f"GridOptions.batch must be >= 1, got {self.batch!r}"
            )
        parse_shard(self.shard)  # validate eagerly


def with_jobs(
    options: GridOptions | None, jobs: int | None
) -> GridOptions:
    """Fold a caller-level ``jobs`` override into an options record.

    The internal migration shim for section entry points that keep a
    ``jobs`` convenience parameter: :func:`run_grid` itself takes only
    ``options`` now.
    """
    opts = options if options is not None else GridOptions()
    if jobs is not None and jobs != opts.jobs:
        opts = dataclasses_replace(opts, jobs=jobs)
    return opts


def derive_key(fn: Callable, args: tuple, kwargs: dict) -> str:
    """A best-effort stable key for units given as bare callables/tuples."""
    name = getattr(fn, "__qualname__", None) or repr(fn)
    module = getattr(fn, "__module__", "")
    inside = ",".join(
        [repr(a) for a in args]
        + [f"{k}={v!r}" for k, v in sorted(kwargs.items())]
    )
    prefix = f"{module}." if module else ""
    return f"{prefix}{name}({inside})"


def _as_task(unit) -> GridTask:
    if isinstance(unit, GridTask):
        return unit
    if callable(unit):
        return GridTask(derive_key(unit, (), {}), unit)
    fn, *rest = unit
    args = tuple(rest[0]) if rest else ()
    kwargs = dict(rest[1]) if len(rest) > 1 else {}
    return GridTask(derive_key(fn, args, kwargs), fn, args, kwargs)


def _make_failure(key, payload, wall_s, attempts) -> GridFailure:
    return GridFailure(
        key=key,
        error_type=payload.get("type", "Exception"),
        message=payload.get("message", ""),
        wall_s=wall_s,
        attempts=attempts,
        details=dict(payload.get("details", {})),
        traceback=payload.get("traceback", ""),
    )


def _resolve_backend(
    opts: GridOptions, count: int, pending: int
) -> tuple[Executor, bool]:
    """The backend for this run and whether the run owns (closes) it."""
    spec = opts.executor
    if isinstance(spec, Executor):
        return spec, False
    if isinstance(spec, str):
        return resolve_executor(spec, opts.jobs), True
    if spec is not None:
        raise TypeError(
            f"GridOptions.executor must be None, a spec string, or an "
            f"Executor, got {type(spec).__name__}"
        )
    if count <= 1 or pending <= 1:
        return InprocessAsyncExecutor(), True
    return (
        LocalPoolExecutor(
            workers=min(count, pending),
            retries=opts.retries,
            backoff=opts.backoff,
        ),
        True,
    )


def _percentile_90(samples: list) -> float:
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(len(ranked) * 0.9))]


def run_grid(
    units: Sequence,
    options: GridOptions | None = None,
    *,
    label: str = "grid",
    jobs=UNSET,
) -> list:
    """Run every work unit; results come back in submission order.

    ``units`` may hold :class:`GridTask` instances, bare callables, or
    ``(fn, args)`` / ``(fn, args, kwargs)`` tuples.  All configuration
    rides on one :class:`GridOptions` record (backend, timeout, retries,
    failure policy, journal, shard, stealing).  ``jobs=1`` runs the
    units serially in-process (the deterministic fallback); ``jobs>1``
    fans out over the configured backend and gathers results by key.

    The pre-executor ``jobs=`` keyword has been removed; passing it
    raises :class:`TypeError` naming the ``GridOptions(jobs=...)``
    replacement.

    With the default ``failures="raise"`` a worker exception propagates
    to the caller, reconstructed from its serialized payload.
    """
    opts = merge_legacy_kwargs(
        options,
        {"jobs": jobs},
        where="run_grid",
        factory=GridOptions,
    )
    tasks = [_as_task(unit) for unit in units]
    seen: set[str] = set()
    for task in tasks:
        if task.key in seen:
            raise ValueError(f"duplicate grid key {task.key!r}")
        seen.add(task.key)
    count = resolve_jobs(opts.jobs)
    timeout = resolve_timeout(opts.timeout)
    journal = opts.journal
    collect = opts.failures == "collect"
    collector = opts.collector if opts.collector is not None else _default_collector
    timing.add(f"grid.{label}.units", len(tasks))

    results: list = [MISSING] * len(tasks)
    pending: dict[int, GridTask] = {}
    for index, task in enumerate(tasks):
        cached = journal.lookup(task.key) if journal is not None else MISSING
        if cached is not MISSING:
            results[index] = cached
        else:
            pending[index] = task
    resumed = len(tasks) - len(pending)
    if resumed:
        timing.add(f"grid.{label}.resumed", resumed)
        timing.add("grid.resumed_units", resumed)

    shard = parse_shard(opts.shard)
    if shard is not None:
        k, n = shard
        skipped = 0
        for index in sorted(pending):
            task = pending[index]
            if not shard_owns(task.key, k, n):
                # an inert placeholder: not journalled, not collected —
                # the merge run re-runs (or resumes) these units
                results[index] = GridFailure(
                    key=task.key,
                    error_type="ShardSkipped",
                    message=f"unit not owned by shard {k}/{n}",
                )
                del pending[index]
                skipped += 1
        if skipped:
            timing.add(f"grid.{label}.shard_skipped", skipped)
            timing.add("grid.shard_skipped", skipped)

    # batched dispatch: fold pending units sharing a batch_key into
    # composite run_batch tasks; slots, journal entries and failures
    # stay per-member, so tables and resume cannot tell
    composite_members: dict[str, list[int]] = {}
    batch = resolve_batch(opts.batch)
    if batch > 1:
        from repro.eval.common import run_batch

        groups: dict[str, list[int]] = {}
        for index in sorted(pending):
            group_key = tasks[index].batch_key
            if group_key:
                groups.setdefault(group_key, []).append(index)
        serial = 0
        batched_units = 0
        for group_key, members in sorted(groups.items()):
            for start in range(0, len(members), batch):
                chunk = members[start:start + batch]
                if len(chunk) < 2:
                    continue
                composite = GridTask(
                    f"{label}/batch:{group_key}#{serial}",
                    run_batch,
                    (
                        [
                            (
                                tasks[i].fn,
                                tasks[i].args,
                                dict(tasks[i].kwargs),
                            )
                            for i in chunk
                        ],
                    ),
                )
                serial += 1
                batched_units += len(chunk)
                composite_members[composite.key] = chunk
                for i in chunk:
                    del pending[i]
                pending[chunk[0]] = composite
        if batched_units:
            timing.add(f"grid.{label}.batched_units", batched_units)
            timing.add("grid.batched_units", batched_units)

    def record_ok(index: int, value, wall_s: float, by: str = "") -> None:
        results[index] = value
        if journal is not None:
            journal.record_ok(tasks[index].key, value, wall_s, by=by)

    def record_failure(index: int, payload, wall_s, attempts) -> None:
        task = tasks[index]
        failure = _make_failure(task.key, payload, wall_s, attempts)
        if journal is not None:
            journal.record_failure(task.key, payload, wall_s, attempts)
        timing.add(f"grid.{label}.failures")
        timing.add("grid.failed_units")
        if payload.get("type") == "GridTimeout":
            timing.add("grid.timeouts")
        if not collect:
            raise reconstruct_error(payload)
        results[index] = failure
        collector.add(failure)

    if not pending:
        return results

    backend, owned = _resolve_backend(opts, count, len(pending))
    if backend.backend != "inprocess":
        probe = backend.probe()
        timing.add(f"grid.{label}.workers", probe.workers or count)

    # global fault counters are bumped inside the backends; snapshot them
    # so their per-label slices stay in BENCH after the refactor
    label_slices = {
        "grid.pool_rebuilds": f"grid.{label}.pool_rebuilds",
        "grid.retried_units": f"grid.{label}.retries",
        "grid.adopted_units": f"grid.{label}.adopted",
        "grid.stolen_units": f"grid.{label}.stolen",
    }
    before = (
        {name: timing.counter(name) for name in label_slices}
        if timing.ENABLED
        else {}
    )

    outstanding: dict[str, int] = {}
    try:
        for index, task in sorted(pending.items()):
            backend.submit(task, timeout)
            outstanding[task.key] = index

        walls: list[float] = []
        stolen: set[str] = set()
        while outstanding:
            event = backend.next_event(timeout=POLL)
            if event is None:
                if opts.steal:
                    _maybe_steal(
                        backend, outstanding, pending, walls, stolen, timeout
                    )
                continue
            index = outstanding.pop(event.key, None)
            if index is None:
                continue  # stale: a steal loser or an aborted run's echo
            if event.metrics is not None:
                timing.merge(event.metrics)
            walls.append(event.wall_s)
            if event.key in stolen:
                backend.cancel(event.key)  # drop the losing queued copy
            members = composite_members.get(event.key)
            if members is None:
                if event.ok:
                    record_ok(
                        index, event.value, event.wall_s, by=event.worker
                    )
                else:
                    record_failure(
                        index, event.value, event.wall_s, event.attempts
                    )
                continue
            # explode a composite back into its members' slots
            share = event.wall_s / len(members)
            payloads = event.value if event.ok else None
            if payloads is None or len(payloads) != len(members):
                # the whole batch died (timeout, crash, malformed
                # return): every member failed
                payload = (
                    event.value
                    if not event.ok
                    else {
                        "type": "GridBatchError",
                        "module": "repro.errors",
                        "message": "batched worker returned "
                        f"{0 if payloads is None else len(payloads)} "
                        f"results for {len(members)} units",
                    }
                )
                for member_index in members:
                    record_failure(member_index, payload, share, event.attempts)
                continue
            for member_index, (status, value) in zip(members, payloads):
                if status == "ok":
                    record_ok(member_index, value, share, by=event.worker)
                else:
                    record_failure(member_index, value, share, event.attempts)
    except BaseException:
        # failures="raise", KeyboardInterrupt, ... — don't wait for
        # stragglers, the journal already holds everything completed
        for key in outstanding:
            backend.cancel(key)
        if not owned:
            _drain(backend, outstanding)
        raise
    finally:
        if timing.ENABLED:
            for name, slice_name in label_slices.items():
                delta = timing.counter(name) - before.get(name, 0)
                if delta:
                    timing.add(slice_name, delta)
        if owned:
            backend.close()
    return results


def _maybe_steal(backend, outstanding, pending, walls, stolen, timeout):
    """One work-stealing tick: at most one straggler is resubmitted.

    Deterministic by construction: a stolen key yields two completion
    events carrying the *same* deterministic unit value; the façade
    keeps whichever arrives first and the result tables cannot tell.
    """
    if len(walls) < STEAL_MIN_SAMPLES:
        return
    probe = backend.probe()
    if probe.idle <= 0:
        return
    threshold = max(_percentile_90(walls) * STEAL_FACTOR, STEAL_FLOOR)
    tasks_by_key = {task.key: task for task in pending.values()}
    for key, elapsed in sorted(
        backend.running().items(), key=lambda item: -item[1]
    ):
        if elapsed <= threshold or key in stolen or key not in outstanding:
            continue
        task = tasks_by_key.get(key)
        if task is None:
            continue
        backend.submit(task, timeout)
        stolen.add(key)
        timing.add("grid.stolen_units")
        return


def _drain(backend, outstanding, patience: float = 2.0):
    """Best-effort cleanup when aborting a run on a *shared* backend:
    soak up events for this run's keys so a later grid on the same
    executor cannot mistake them for its own."""
    import time as _time

    deadline = _time.monotonic() + patience
    while outstanding and _time.monotonic() < deadline:
        event = backend.next_event(timeout=0.1)
        if event is None:
            probe = backend.probe()
            if not probe.queued and not probe.in_flight:
                return
            continue
        outstanding.pop(event.key, None)
