"""Parallel fan-out for the evaluation harness.

The paper's evaluation is a grid of independent (kernel × strategy ×
target) compile-and-simulate work units.  :func:`run_grid` fans a list of
such units out across a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns the results **in submission order** regardless of completion
order, so tables render identically at any job count.  With ``jobs=1``
(or a single work unit) it degrades to a plain serial loop in the calling
process — no pool, no pickling, bit-identical behaviour to the
pre-parallel harness.

Work units must be *top-level callables with picklable arguments and
results* (the pool uses the default start method; on Linux that is
``fork``, so a parent that has already warmed the target-build cache
hands each worker a warm cache for free).

The job count resolves, in order: the explicit ``jobs`` argument, the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.utils import timing


@dataclass(frozen=True)
class GridTask:
    """One unit of evaluation work: ``fn(*args, **kwargs)``."""

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a job count: argument, else ``REPRO_JOBS``, else cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _as_task(unit) -> GridTask:
    if isinstance(unit, GridTask):
        return unit
    if callable(unit):
        return GridTask(unit)
    fn, *rest = unit
    args = tuple(rest[0]) if rest else ()
    kwargs = dict(rest[1]) if len(rest) > 1 else {}
    return GridTask(fn, args, kwargs)


def run_grid(
    units: Sequence, jobs: int | None = None, label: str = "grid"
) -> list:
    """Run every work unit; results come back in submission order.

    ``units`` may hold :class:`GridTask` instances, bare callables, or
    ``(fn, args)`` / ``(fn, args, kwargs)`` tuples.  ``jobs=1`` runs the
    units serially in-process (the deterministic fallback); ``jobs>1``
    submits them all to a process pool and gathers results by index.  A
    worker exception propagates to the caller either way.
    """
    tasks = [_as_task(unit) for unit in units]
    count = resolve_jobs(jobs)
    timing.add(f"grid.{label}.units", len(tasks))
    if count <= 1 or len(tasks) <= 1:
        return [task.run() for task in tasks]
    workers = min(count, len(tasks))
    timing.add(f"grid.{label}.workers", workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(task.fn, *task.args, **task.kwargs) for task in tasks
        ]
        # gather in submission order — deterministic regardless of which
        # worker finishes first
        return [future.result() for future in futures]
