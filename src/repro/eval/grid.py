"""Fault-tolerant parallel fan-out for the evaluation harness.

The paper's evaluation is a grid of independent (kernel × strategy ×
target) compile-and-simulate work units.  :func:`run_grid` fans a list of
such units out across a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns the results **in submission order** regardless of completion
order, so tables render identically at any job count.  With ``jobs=1``
(or a single work unit) it degrades to a plain serial loop in the calling
process — no pool, no pickling, bit-identical behaviour to the
pre-parallel harness.

Every unit is a keyed :class:`GridTask`; the key (a stable
``section/target/strategy/kernel`` string) names the unit in journals,
failure cells and logs.  Robustness is layered on top of the parallel
fan-out, all configured through one :class:`GridOptions` record:

* **per-unit timeout** (``timeout`` / ``REPRO_UNIT_TIMEOUT``): each unit
  runs under a ``SIGALRM`` deadline in its worker and raises
  :class:`~repro.errors.GridTimeout` when it blows its wall-clock
  budget;
* **crash containment** (``retries`` / ``backoff``): a worker lost to a
  SIGKILL/segfault breaks the pool; the grid rebuilds the pool,
  resubmits the units that never reported back, and only after
  ``retries`` extra attempts turns the survivors into failures;
* **structured failures** (``failures="collect"``): instead of raising
  in the parent, a failed unit yields a :class:`GridFailure` in its
  result slot, carrying the serialized ``repro.errors`` taxonomy
  (type, message, function/pc/cycle details, traceback) across the
  process boundary;
* **checkpoint/resume** (``journal``): completed units are appended to a
  :class:`~repro.eval.journal.Journal` and skipped on the next run.

Work units must be *top-level callables with picklable arguments and
results* (the pool uses the default start method; on Linux that is
``fork``, so a parent that has already warmed the target-build cache
hands each worker a warm cache for free).

The job count resolves, in order: the explicit ``jobs`` argument, the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import as_completed
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.errors import GridTimeout, error_payload, reconstruct_error
from repro.eval.journal import MISSING, Journal
from repro.utils import timing


@dataclass(frozen=True)
class GridTask:
    """One keyed unit of evaluation work: ``fn(*args, **kwargs)``.

    ``key`` is the unit's stable identity — the same string the journal
    records, failure cells display and resume matches on.  Keys follow
    the ``section/target/strategy/kernel`` convention (for example
    ``table4/r2000/ips/K7``) and must be unique within one grid.
    """

    key: str
    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError(
                f"GridTask({self.key!r}): fn must be callable — the key "
                "string comes first"
            )

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass(frozen=True)
class GridFailure:
    """A work unit that did not produce a result.

    Appears in the result list (in the failed unit's slot) when
    ``failures="collect"``; renders as a FAILED cell in report tables.
    ``error_type``/``message``/``details`` carry the serialized
    ``repro.errors`` payload from the worker; ``attempts`` counts how
    many times the unit ran (> 1 after pool rebuilds).
    """

    key: str
    error_type: str
    message: str
    wall_s: float = 0.0
    attempts: int = 1
    details: dict = field(default_factory=dict)
    traceback: str = ""

    def summary(self) -> str:
        where = ", ".join(
            f"{name}={value}" for name, value in sorted(self.details.items())
        )
        suffix = f" ({where})" if where else ""
        return f"{self.key}: {self.error_type}: {self.message}{suffix}"

    @property
    def payload(self) -> dict:
        """The :func:`repro.errors.error_payload`-shaped dict."""
        return {
            "type": self.error_type,
            "module": "repro.errors",
            "message": self.message,
            "details": dict(self.details),
            "traceback": self.traceback,
        }


@dataclass(frozen=True)
class GridOptions:
    """Consolidated knobs for one grid run.

    * ``jobs`` — worker processes (``None``: ``REPRO_JOBS`` or cpu count);
    * ``timeout`` — per-unit wall-clock seconds (``None``:
      ``REPRO_UNIT_TIMEOUT`` or unlimited);
    * ``retries`` — extra attempts for units lost to a broken pool;
    * ``backoff`` — seconds to wait before rebuilding a broken pool
      (doubles per rebuild);
    * ``failures`` — ``"raise"`` re-raises the first failure in the
      parent (the pre-1.1 behaviour); ``"collect"`` puts a
      :class:`GridFailure` in the unit's result slot and keeps going;
    * ``journal`` — a :class:`~repro.eval.journal.Journal` to checkpoint
      completed units into and resume from.
    """

    jobs: int | None = None
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.25
    failures: str = "raise"
    journal: Journal | None = None

    def __post_init__(self) -> None:
        if self.failures not in ("raise", "collect"):
            raise ValueError(
                f"GridOptions.failures must be 'raise' or 'collect', "
                f"got {self.failures!r}"
            )


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a job count: argument, else ``REPRO_JOBS``, else cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_timeout(timeout: float | None = None) -> float | None:
    """Resolve the per-unit timeout: argument, else ``REPRO_UNIT_TIMEOUT``.

    ``None`` or a non-positive value means no deadline.
    """
    if timeout is None:
        env = os.environ.get("REPRO_UNIT_TIMEOUT", "").strip()
        if not env:
            return None
        try:
            timeout = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_UNIT_TIMEOUT must be a number, got {env!r}"
            ) from None
    return timeout if timeout and timeout > 0 else None


def derive_key(fn: Callable, args: tuple, kwargs: dict) -> str:
    """A best-effort stable key for units given as bare callables/tuples."""
    name = getattr(fn, "__qualname__", None) or repr(fn)
    module = getattr(fn, "__module__", "")
    inside = ",".join(
        [repr(a) for a in args]
        + [f"{k}={v!r}" for k, v in sorted(kwargs.items())]
    )
    prefix = f"{module}." if module else ""
    return f"{prefix}{name}({inside})"


def _as_task(unit) -> GridTask:
    if isinstance(unit, GridTask):
        return unit
    if callable(unit):
        return GridTask(derive_key(unit, (), {}), unit)
    fn, *rest = unit
    args = tuple(rest[0]) if rest else ()
    kwargs = dict(rest[1]) if len(rest) > 1 else {}
    return GridTask(derive_key(fn, args, kwargs), fn, args, kwargs)


# -- the per-unit wall-clock deadline (runs inside the worker) -------------


@contextmanager
def _unit_deadline(seconds: float | None):
    """Arm a ``SIGALRM`` deadline around one unit, when the platform and
    calling context allow it (main thread, Unix).  Pool workers execute
    units on their main thread, so the deadline is armed there even when
    the parent could not arm one for itself."""
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(_signum, _frame):
        raise GridTimeout(
            f"work unit exceeded its {seconds:g}s wall-clock budget",
            seconds=seconds,
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_unit(fn, args, kwargs, timeout):
    """Top-level worker entry: run one unit, report outcome as data.

    Returns ``("ok", result, wall_s, metrics)`` or ``("err", payload,
    wall_s, metrics)`` where ``payload`` is an
    :func:`repro.errors.error_payload` — raising across the pickle
    boundary would lose the taxonomy's detail fields — and ``metrics``
    is the worker's per-unit :func:`repro.utils.timing.snapshot` (or
    ``None`` with instrumentation off).  The recorder is reset at unit
    entry so the snapshot is a clean delta: with the ``fork`` start
    method a worker inherits the parent's accumulated counters, and a
    reused pool process carries its previous units' — either would
    double-count on merge.
    """
    if timing.ENABLED:
        timing.reset()
    watch = timing.stopwatch()
    try:
        with _unit_deadline(timeout):
            result = fn(*args, **kwargs)
    except Exception as exc:  # noqa: BLE001 — the whole point is containment
        metrics = timing.snapshot() if timing.ENABLED else None
        return ("err", error_payload(exc), watch.seconds, metrics)
    metrics = timing.snapshot() if timing.ENABLED else None
    return ("ok", result, watch.seconds, metrics)


# -- failure bookkeeping (parent process) ----------------------------------

#: failures collected by every run_grid call since the last reset — the
#: report reads this to render its failure section and set its exit code
_collected_failures: list[GridFailure] = []


def reset_failures() -> None:
    del _collected_failures[:]


def collected_failures() -> list[GridFailure]:
    return list(_collected_failures)


def _make_failure(key, payload, wall_s, attempts) -> GridFailure:
    return GridFailure(
        key=key,
        error_type=payload.get("type", "Exception"),
        message=payload.get("message", ""),
        wall_s=wall_s,
        attempts=attempts,
        details=dict(payload.get("details", {})),
        traceback=payload.get("traceback", ""),
    )


#: payload standing in for a unit whose worker died without reporting
_CRASH_PAYLOAD = {
    "type": "WorkerCrash",
    "module": "repro.errors",
    "message": "worker process died (killed or crashed) while running "
    "this unit or its pool-mate",
}


def run_grid(
    units: Sequence,
    jobs: int | None = None,
    label: str = "grid",
    options: GridOptions | None = None,
) -> list:
    """Run every work unit; results come back in submission order.

    ``units`` may hold :class:`GridTask` instances, bare callables, or
    ``(fn, args)`` / ``(fn, args, kwargs)`` tuples.  ``jobs=1`` runs the
    units serially in-process (the deterministic fallback); ``jobs>1``
    submits them all to a process pool and gathers results by index.

    Robustness knobs (timeout, retries, failure collection, journal)
    ride on ``options`` — see :class:`GridOptions`.  With the default
    ``failures="raise"`` a worker exception propagates to the caller
    either way, reconstructed from its serialized payload.
    """
    opts = options or GridOptions()
    if jobs is not None:
        opts = replace(opts, jobs=jobs)
    tasks = [_as_task(unit) for unit in units]
    seen: set[str] = set()
    for task in tasks:
        if task.key in seen:
            raise ValueError(f"duplicate grid key {task.key!r}")
        seen.add(task.key)
    count = resolve_jobs(opts.jobs)
    timeout = resolve_timeout(opts.timeout)
    journal = opts.journal
    collect = opts.failures == "collect"
    timing.add(f"grid.{label}.units", len(tasks))

    results: list = [MISSING] * len(tasks)
    pending: dict[int, GridTask] = {}
    for index, task in enumerate(tasks):
        cached = journal.lookup(task.key) if journal is not None else MISSING
        if cached is not MISSING:
            results[index] = cached
        else:
            pending[index] = task
    resumed = len(tasks) - len(pending)
    if resumed:
        timing.add(f"grid.{label}.resumed", resumed)
        timing.add("grid.resumed_units", resumed)

    def record_ok(index: int, value, wall_s: float) -> None:
        results[index] = value
        if journal is not None:
            journal.record_ok(tasks[index].key, value, wall_s)

    def record_failure(index: int, payload, wall_s, attempts) -> None:
        task = tasks[index]
        failure = _make_failure(task.key, payload, wall_s, attempts)
        if journal is not None:
            journal.record_failure(task.key, payload, wall_s, attempts)
        timing.add(f"grid.{label}.failures")
        timing.add("grid.failed_units")
        if payload.get("type") == "GridTimeout":
            timing.add("grid.timeouts")
        if not collect:
            raise reconstruct_error(payload)
        results[index] = failure
        _collected_failures.append(failure)

    if count <= 1 or len(pending) <= 1:
        for index, task in sorted(pending.items()):
            watch = timing.stopwatch()
            try:
                with _unit_deadline(timeout):
                    value = task.run()
            except Exception as exc:  # noqa: BLE001
                record_failure(index, error_payload(exc), watch.seconds, 1)
                continue
            record_ok(index, value, watch.seconds)
        return results

    workers = min(count, len(pending))
    timing.add(f"grid.{label}.workers", workers)
    attempts = {index: 0 for index in pending}
    backoff = opts.backoff
    while pending:
        for index in pending:
            attempts[index] += 1
        pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
        index_of = {
            pool.submit(_run_unit, task.fn, task.args, task.kwargs, timeout): i
            for i, task in sorted(pending.items())
        }
        broken = False
        try:
            for future in as_completed(index_of):
                index = index_of[future]
                try:
                    status, payload, wall_s, metrics = future.result()
                except BrokenProcessPool:
                    broken = True
                    continue  # the sibling futures resolve immediately too
                if metrics is not None:
                    timing.merge(metrics)
                if status == "ok":
                    record_ok(index, payload, wall_s)
                else:
                    record_failure(index, payload, wall_s, attempts[index])
                del pending[index]
        except BaseException:
            # failures="raise", KeyboardInterrupt, ... — don't wait for
            # stragglers, the journal already holds everything completed
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=not broken, cancel_futures=broken)
        if broken and pending:
            timing.add(f"grid.{label}.pool_rebuilds")
            timing.add("grid.pool_rebuilds")
            for index in sorted(pending):
                if attempts[index] > opts.retries:
                    record_failure(
                        index, dict(_CRASH_PAYLOAD), 0.0, attempts[index]
                    )
                    del pending[index]
                else:
                    timing.add(f"grid.{label}.retries")
                    timing.add("grid.retried_units")
            if pending:
                time.sleep(backoff)
                backoff = min(backoff * 2, 5.0)
    return results
