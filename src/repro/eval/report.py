"""Run the whole evaluation and render a report.

``python -m repro.eval.report [--scale S]`` regenerates every table and
figure (the content of EXPERIMENTS.md) in one run.  Scaled-down problem
sizes keep the full sweep to a few minutes; pass ``--scale 1.0`` for the
classic Livermore sizes.
"""

from __future__ import annotations

import argparse
import time

from repro.eval.ablation import (
    ablation_heuristic,
    ablation_temporal,
    ablation_temporal_dual,
    render,
)
from repro.eval.claims import (
    claim_compile_time_ordering,
    claim_rase_vs_unscheduled,
    claim_strategy_speedup,
)
from repro.eval.figure7 import figure7
from repro.eval.table1 import table1
from repro.eval.table2 import table2
from repro.eval.table3 import table3
from repro.eval.table4 import table4


def generate_report(scale: float = 0.3) -> str:
    sections: list[str] = []

    def section(title: str, body: str) -> None:
        sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")

    start = time.time()
    section("Table 1 — machine description statistics", table1())
    section("Table 2 — system source code size", table2())
    section("Table 3 — compile time and dilation", table3(repeat=2))
    section(
        f"Table 4 — Livermore Loops (scale={scale})",
        table4(scale=scale, cache=True),
    )
    section("Figure 7 — i860 dual-operation schedule", figure7())

    claim = claim_strategy_speedup(scale=scale)
    lines = [
        f"  workload {kid or 'unrolled-hydro'}: postpass/ips={ips:.3f}  "
        f"postpass/rase={rase:.3f}"
        for kid, (ips, rase) in sorted(claim.per_kernel.items())
    ]
    section(
        "Claim C1 — IPS/RASE vs Postpass on computation-intensive code",
        "\n".join(lines)
        + f"\n  geomean: IPS {claim.ips_speedup:.3f}, RASE {claim.rase_speedup:.3f}",
    )

    baseline_claim = claim_rase_vs_unscheduled(scale=scale)
    section(
        "Claim C3 — RASE vs unscheduled (local-only) baseline",
        "\n".join(
            f"  K{kid}: {ratio:.3f}"
            for kid, ratio in sorted(baseline_claim.per_kernel.items())
        )
        + f"\n  geomean speedup: {baseline_claim.geomean_speedup:.3f}",
    )

    compile_claim = claim_compile_time_ordering(repeat=2)
    section(
        "Claim C2 — compile-time orderings",
        f"  postpass {compile_claim.postpass_seconds:.3f}s < "
        f"ips {compile_claim.ips_seconds:.3f}s < "
        f"rase {compile_claim.rase_seconds:.3f}s : "
        f"{'holds' if compile_claim.ordering_holds else 'VIOLATED'}\n"
        f"  i860/r2000 total back-end time: {compile_claim.i860_slowdown:.2f}x",
    )

    dual = ablation_temporal_dual()
    rows = ablation_temporal(kernel_ids=(1, 3, 7), scale=scale)
    section(
        "Ablation A1 — temporal scheduling of EAP sub-operations",
        f"dual-operation-rich fragment: eap={dual.baseline_cycles} "
        f"monolithic={dual.variant_cycles} "
        f"(monolithic/eap={dual.ratio:.3f})\n"
        + render(rows, "per-kernel (kernel-loop cycles)", "monolithic"),
    )

    heuristic_rows = ablation_heuristic(kernel_ids=(1, 6, 7), scale=scale)
    section(
        "Ablation A2 — maximum-distance heuristic vs FIFO",
        render(heuristic_rows, "kernel-loop cycles", "fifo"),
    )

    from repro.eval.ablation import ablation_delay_fill

    delay_rows = ablation_delay_fill(kernel_ids=(1, 5, 12), scale=scale)
    section(
        "Ablation A3 — GH82 delay-slot filling vs nops",
        render(delay_rows, "kernel-loop cycles", "nops"),
    )

    sections.append(f"total evaluation time: {time.time() - start:.1f}s\n")
    return "\n".join(sections)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    arguments = parser.parse_args()
    print(generate_report(scale=arguments.scale))


if __name__ == "__main__":
    main()
