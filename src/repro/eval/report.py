"""Run the whole evaluation and render a report.

``python -m repro.eval.report [--scale S] [--jobs N] [--timeout T]
[--resume JOURNAL]`` regenerates every table and figure (the content of
EXPERIMENTS.md) in one run.  Scaled-down problem sizes keep the full
sweep fast; pass ``--scale 1.0`` for the classic Livermore sizes.

The harness is performance-instrumented and fault-tolerant: independent
(kernel × strategy × target) work units fan out across a pluggable
execution backend (``--jobs``/``REPRO_JOBS`` over the local pool by
default; ``--executor socket:HOST:PORT`` runs them on ``repro worker``
processes anywhere on the network, ``--shard K/N`` splits one report
across coordinators; ``--jobs 1`` is the deterministic serial fallback —
table values and checksums are identical at any job count and backend),
each unit runs under an optional wall-clock budget
(``--timeout``/``REPRO_UNIT_TIMEOUT``), crashed workers are retried with
a rebuilt pool, and failed units render as FAILED cells instead of
aborting the run (the process still exits nonzero so CI notices).  With
``--resume JOURNAL`` (or ``REPRO_JOURNAL``) completed units checkpoint
into a JSONL journal and a re-run after an interruption re-executes only
the missing or failed units — the resumed tables are byte-identical to a
single-shot run.  A machine-readable ``BENCH_eval.json`` records wall
time per section, simulator throughput, target-cache hit counts and the
failure/retry/resume tallies so later PRs have a perf trajectory to
regress against.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.cache import configure as configure_cache, get_cache
from repro.eval.attribution import measure_stalls, render_stalls
from repro.eval.ablation import (
    ablation_delay_fill,
    ablation_heuristic,
    ablation_temporal,
    ablation_temporal_dual,
    render,
)
from repro.eval.claims import (
    claim_compile_time_ordering,
    claim_rase_vs_unscheduled,
    claim_strategy_speedup,
)
from repro.eval.common import shared_executables
from repro.eval.figure7 import figure7
from repro.eval.executors import Executor, LocalPoolExecutor, resolve_executor
from repro.eval.grid import (
    FailureCollector,
    GridFailure,
    GridOptions,
    resolve_jobs,
    resolve_timeout,
)
from repro.eval.journal import Journal
from repro.eval.table1 import table1
from repro.eval.table2 import table2
from repro.eval.table3 import table3
from repro.eval.table4 import measure as table4_measure
from repro.eval.table4 import render as table4_render
from repro.utils import timing

#: the seed harness (serial, uncached, pre-optimization) measured at
#: scale 0.3 on this repository's reference runner — the denominator for
#: the speedup figure in BENCH_eval.json
SEED_SERIAL_SECONDS = 194.7
SEED_SCALE = 0.3

#: report sections whose body is wall-clock measurement (compile-time
#: tables) — legitimately different between otherwise identical runs,
#: so determinism comparisons (resume smoke, cold/warm cache smoke)
#: exclude them
NONDETERMINISTIC_SECTIONS = ("Table 3", "Claim C2")

_SECTION_SPLIT = re.compile(r"={72}\n(.+)\n={72}\n")


def deterministic_sections(text: str) -> dict[str, str]:
    """``{title: body}`` of a rendered report, with the wall-clock
    content (timing tables, the total-time footer) stripped — two runs
    over the same inputs must agree on exactly these."""
    text = re.sub(r"(?m)^total evaluation time: .*\n", "", text)
    parts = _SECTION_SPLIT.split(text)
    sections = dict(zip(parts[1::2], parts[2::2]))
    return {
        title: body
        for title, body in sections.items()
        if not title.startswith(NONDETERMINISTIC_SECTIONS)
    }


@dataclass
class ReportResult:
    """Everything one report run produced: the rendered text, the grid
    failures that degraded it (empty on a clean run), and the
    machine-readable benchmark payload."""

    text: str
    failures: list[GridFailure] = field(default_factory=list)
    bench: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        return self.text


def generate_report(
    scale: float = 0.3,
    jobs: int | None = None,
    bench_path: str | None = None,
    timeout: float | None = None,
    resume: str | None = None,
    executor: str | Executor | None = None,
    shard: str | None = None,
    batch: int | None = None,
) -> ReportResult:
    """Run every experiment; never raises for a failed work unit.

    ``resume`` names a journal file: completed units are checkpointed
    there and reused by the next run.  ``timeout`` bounds each unit's
    wall clock.  ``executor`` picks the grid backend (a spec string like
    ``"socket:0.0.0.0:7777"``, or a live Executor to reuse) — one
    backend serves every section, so its workers stay warm from table to
    table.  ``shard="K/N"`` runs only this run's slice of every grid;
    point the shards at one shared journal and finish with an unsharded
    resume run to merge.  ``batch`` routes up to that many same-(target,
    strategy) units through one worker task (``None``: ``REPRO_BATCH``).
    Inspect ``.failures`` (and exit nonzero) on a degraded run.
    """
    jobs = resolve_jobs(jobs)
    timeout = resolve_timeout(timeout)
    journal = (
        Journal(resume, config={"scale": scale, "kind": "report"})
        if resume
        else None
    )
    owned_executor: Executor | None = None
    backend = executor
    if isinstance(backend, str):
        backend = owned_executor = resolve_executor(backend, jobs)
    elif backend is None and jobs > 1:
        # one pool for the whole report: workers persist across sections
        backend = owned_executor = LocalPoolExecutor(workers=jobs)
    collector = FailureCollector()
    options = GridOptions(
        jobs=jobs,
        timeout=timeout,
        failures="collect",
        journal=journal,
        executor=backend,
        shard=shard,
        collector=collector,
        batch=batch,
    )
    timing.reset()
    timing.enable()
    # the whole report is one shared-executable scope: every unit — run
    # in-process or in a worker forked after this point — compiles
    # through the batch memo, so sections that revisit the same
    # (kernel, target, strategy) share one warmed executable instead of
    # unpickling and re-warming it per section
    memo_scope = shared_executables()
    memo_scope.__enter__()
    try:
        sections: list[str] = []
        section_seconds: dict[str, float] = {}

        def section(title: str, body_fn) -> None:
            start = time.time()
            body = body_fn()
            section_seconds[title.split(" — ")[0]] = time.time() - start
            sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")

        start = time.time()
        section(
            "Table 1 — machine description statistics",
            lambda: table1(options=options),
        )
        section("Table 2 — system source code size", table2)
        section("Table 3 — compile time and dilation", lambda: table3(repeat=2))

        measure_start = time.time()
        table4_data = table4_measure(
            scale=scale, cache=True, options=options
        )
        measure_seconds = time.time() - measure_start
        section(
            f"Table 4 — Livermore Loops (scale={scale})",
            lambda: table4_render(table4_data),
        )
        section_seconds["Table 4"] += measure_seconds
        section("Figure 7 — i860 dual-operation schedule", figure7)

        stall_start = time.time()
        stall_data = measure_stalls(options=options)
        stall_seconds = time.time() - stall_start
        section(
            "Stall attribution — where the cycles go, per target",
            lambda: render_stalls(stall_data),
        )
        section_seconds["Stall attribution"] += stall_seconds

        def c1() -> str:
            claim = claim_strategy_speedup(scale=scale, options=options)
            lines = [
                f"  workload {kid or 'unrolled-hydro'}: postpass/ips={ips:.3f}  "
                f"postpass/rase={rase:.3f}"
                for kid, (ips, rase) in sorted(claim.per_kernel.items())
            ]
            lines += [
                f"  FAILED: {failure.summary()}" for failure in claim.failures
            ]
            return (
                "\n".join(lines)
                + f"\n  geomean: IPS {claim.ips_speedup:.3f}, "
                f"RASE {claim.rase_speedup:.3f}"
            )

        section("Claim C1 — IPS/RASE vs Postpass on computation-intensive code", c1)

        def c3() -> str:
            baseline_claim = claim_rase_vs_unscheduled(scale=scale, options=options)
            lines = [
                f"  K{kid}: {ratio:.3f}"
                for kid, ratio in sorted(baseline_claim.per_kernel.items())
            ]
            lines += [
                f"  FAILED: {failure.summary()}"
                for failure in baseline_claim.failures
            ]
            return (
                "\n".join(lines)
                + f"\n  geomean speedup: {baseline_claim.geomean_speedup:.3f}"
            )

        section("Claim C3 — RASE vs unscheduled (local-only) baseline", c3)

        def c2() -> str:
            compile_claim = claim_compile_time_ordering(repeat=2)
            return (
                f"  postpass {compile_claim.postpass_seconds:.3f}s < "
                f"ips {compile_claim.ips_seconds:.3f}s < "
                f"rase {compile_claim.rase_seconds:.3f}s : "
                f"{'holds' if compile_claim.ordering_holds else 'VIOLATED'}\n"
                f"  i860/r2000 total back-end time: {compile_claim.i860_slowdown:.2f}x"
            )

        section("Claim C2 — compile-time orderings", c2)

        def a1() -> str:
            dual = ablation_temporal_dual()
            rows = ablation_temporal(
                kernel_ids=(1, 3, 7), scale=scale, options=options
            )
            return (
                f"dual-operation-rich fragment: eap={dual.baseline_cycles} "
                f"monolithic={dual.variant_cycles} "
                f"(monolithic/eap={dual.ratio:.3f})\n"
                + render(rows, "per-kernel (kernel-loop cycles)", "monolithic")
            )

        section("Ablation A1 — temporal scheduling of EAP sub-operations", a1)

        section(
            "Ablation A2 — maximum-distance heuristic vs FIFO",
            lambda: render(
                ablation_heuristic(
                    kernel_ids=(1, 6, 7), scale=scale, options=options
                ),
                "kernel-loop cycles",
                "fifo",
            ),
        )

        section(
            "Ablation A3 — GH82 delay-slot filling vs nops",
            lambda: render(
                ablation_delay_fill(
                    kernel_ids=(1, 5, 12), scale=scale, options=options
                ),
                "kernel-loop cycles",
                "nops",
            ),
        )

        failures = collector.failures()
        if failures:
            lines = "\n".join(f"  {failure.summary()}" for failure in failures)
            sections.append(
                f"{'=' * 72}\nFailures — {len(failures)} work unit(s) did not "
                f"complete\n{'=' * 72}\n{lines}\n"
            )

        total_seconds = time.time() - start
        sections.append(
            f"total evaluation time: {total_seconds:.1f}s (jobs={jobs})\n"
        )

        grid_info = {
            "backend": backend.backend if backend is not None else "inprocess",
            "workers": jobs,
            "shard": shard,
        }
        bench = _bench_payload(
            scale,
            jobs,
            total_seconds,
            section_seconds,
            table4_data,
            failures,
            stall_data,
            grid_info,
        )
        if bench_path:
            with open(bench_path, "w") as handle:
                json.dump(bench, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if owned_executor is not None:
            owned_executor.close()
        if journal is not None:
            journal.close()
        return ReportResult(
            text="\n".join(sections), failures=failures, bench=bench
        )
    finally:
        memo_scope.__exit__(None, None, None)


def generate_cache_compare(
    scale: float = 0.3,
    jobs: int | None = None,
    bench_path: str | None = None,
    timeout: float | None = None,
    cache_root: str | None = None,
    executor: str | None = None,
) -> ReportResult:
    """Cold/warm artifact-cache comparison: the full report twice
    against one cache directory (a fresh tmpdir unless ``cache_root`` is
    given), with every in-process memo dropped in between so the warm
    run — and the workers it forks — must go through the disk.

    Returns the *warm* run's result; its bench payload gains a
    ``cache_compare`` section with both walls, and a table mismatch
    between the runs is surfaced as a failure (nonzero exit).
    """
    from repro.eval import ablation
    from repro.targets import clear_target_cache

    root = cache_root or tempfile.mkdtemp(prefix="repro-cache-compare-")
    configure_cache(root=root, enabled=True)
    # executor stays a *spec string* here: each run builds (and closes)
    # a fresh backend, so the warm run's workers cannot inherit the cold
    # run's in-process memos by fork
    cold = generate_report(
        scale=scale, jobs=jobs, bench_path=None, timeout=timeout,
        executor=executor,
    )
    clear_target_cache()
    ablation._I860_VARIANTS.clear()
    warm = generate_report(
        scale=scale, jobs=jobs, bench_path=None, timeout=timeout,
        executor=executor,
    )
    identical = deterministic_sections(cold.text) == deterministic_sections(
        warm.text
    )
    cold_wall = cold.bench["wall_seconds"]["total"]
    warm_wall = warm.bench["wall_seconds"]["total"]
    warm.bench["cache_compare"] = {
        "cache_root": str(root),
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "speedup": (
            round(cold_wall / warm_wall, 2) if warm_wall > 0 else None
        ),
        "identical_tables": identical,
        "warm_cgg_builds": warm.bench["compile"]["cgg_builds"],
        "warm_kernel_compiles": warm.bench["compile"]["compiled"],
    }
    warm.failures = cold.failures + warm.failures
    if bench_path:
        with open(bench_path, "w") as handle:
            json.dump(warm.bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return warm


def _stalls_payload(stall_data) -> dict:
    """BENCH schema v3's ``stalls`` section: per (target, strategy), the
    simulator hazard-kind cycle breakdown and the scheduler's stall-reason
    histogram, each with its conservation identity spelled out."""
    cells: dict = {}
    for (target, strategy), run in (stall_data or {}).items():
        if isinstance(run, GridFailure):
            cells.setdefault(target, {})[strategy] = {"failed": run.summary()}
            continue
        breakdown = run.cycle_breakdown or {}
        cells.setdefault(target, {})[strategy] = {
            "cycles": run.actual_cycles,
            "cycle_breakdown": dict(breakdown),
            "stall_cycles": run.stall_cycles,
            # every cycle of issue-point advance is attributed
            "sim_conserved": sum(breakdown.values()) == run.actual_cycles - 1,
            "sched_stall_reasons": dict(run.sched_stall_reasons),
            "sched_nop_slots": run.sched_nop_slots,
            "sched_conserved": (
                sum(run.sched_stall_reasons.values()) == run.sched_nop_slots
            ),
        }
    return cells


def _bench_payload(
    scale: float,
    jobs: int,
    total_seconds: float,
    section_seconds: dict[str, float],
    table4_data,
    failures: list[GridFailure],
    stall_data=None,
    grid_info: dict | None = None,
) -> dict:
    """The machine-readable BENCH_eval.json payload (schema v10)."""
    runs = [
        run
        for by_strategy in table4_data.runs.values()
        for run in by_strategy.values()
    ]
    sim_seconds = sum(run.sim_seconds for run in runs)
    sim_cycles = sum(run.actual_cycles for run in runs)
    snapshot = timing.snapshot()
    block_hits = timing.counter("sim.block_cache.hit")
    block_misses = timing.counter("sim.block_cache.miss")
    block_lookups = block_hits + block_misses
    store = get_cache()
    grid_info = dict(grid_info or {})
    payload = {
        "schema": 10,
        "scale": scale,
        "jobs": jobs,
        "wall_seconds": {
            "total": round(total_seconds, 3),
            **{
                name: round(seconds, 3)
                for name, seconds in section_seconds.items()
            },
        },
        "table4": {
            "runs": len(runs),
            "cycles_simulated": sim_cycles,
            "sim_wall_seconds": round(sim_seconds, 3),
            "cycles_per_second": (
                round(sim_cycles / sim_seconds) if sim_seconds > 0 else None
            ),
            "compile_wall_seconds": round(
                sum(run.compile_seconds for run in runs), 3
            ),
            "unmatched_profile_blocks": table4_data.unmatched_blocks,
        },
        "sim": {
            "run_seconds": round(
                snapshot["phases"]
                .get("sim.run", {})
                .get("seconds", 0.0),
                3,
            ),
            "block_cache": {
                "hits": block_hits,
                "misses": block_misses,
                "hit_rate": (
                    round(block_hits / block_lookups, 4)
                    if block_lookups
                    else None
                ),
            },
            "jit": {
                "segments": timing.counter("sim.jit.segments"),
                # schema v10: compiled + preloaded code live at run end,
                # so a fully warm run does not read as "JIT off"
                "active_segments": timing.counter("sim.jit.active_segments"),
                "hits": timing.counter("sim.jit.hit"),
                "deopts": timing.counter("sim.jit.deopt"),
            },
            # schema v10: the digest-free timing chain.  ``digests
            # _computed`` counts first-visit transition replays; a warm
            # run keeps ``digest_rate`` (digests / memo lookups) ≈ 0
            "timing": {
                "digests_computed": timing.counter(
                    "sim.timing.digests_computed"
                ),
                "digest_rate": (
                    round(
                        timing.counter("sim.timing.digests_computed")
                        / block_lookups,
                        6,
                    )
                    if block_lookups
                    else None
                ),
            },
            # schema v10: warm-simulation self-time breakdown from
            # ``scripts/bench_sim.py --profile-sim`` (None until a
            # profiled bench run is merged)
            "self_time": None,
            # schema v9: trace-superblock activity (traces compiled,
            # side exits taken back into the dispatch loop, preloaded
            # segment/trace payloads from the artifact cache)
            "superblock": {
                "traces": timing.counter("sim.jit.superblocks"),
                "side_exits": timing.counter("sim.jit.side_exits"),
                "demoted": timing.counter("sim.jit.sb_demoted"),
                "preloaded_segments": timing.counter("sim.jit.preloaded"),
                "preloaded_traces": timing.counter("sim.jit.sb_preloaded"),
            },
        },
        # schema v9: batched-dispatch volume (units run inside composite
        # batch tasks; 0 with batching off)
        "batched_units": timing.counter("grid.batched_units"),
        "target_cache": {
            "hits": timing.counter("target_cache.hit"),
            "misses": timing.counter("target_cache.miss"),
            "bypasses": timing.counter("target_cache.bypass"),
            "disk_hits": timing.counter("target_cache.disk_hit"),
        },
        "artifact_cache": {
            "enabled": store.enabled,
            "root": str(store.root),
            "hits": timing.counter("cache.hit"),
            "misses": timing.counter("cache.miss"),
            "writes": timing.counter("cache.write"),
            "corrupt": timing.counter("cache.corrupt"),
            "layers": {
                layer: {
                    "hits": timing.counter(f"cache.{layer}.hit"),
                    "misses": timing.counter(f"cache.{layer}.miss"),
                    "writes": timing.counter(f"cache.{layer}.write"),
                }
                for layer in ("target", "exe", "jit", "timing")
            },
        },
        "compile": {
            "calls": timing.counter("compile.calls"),
            "compiled": timing.counter("compile.compiled"),
            "cgg_builds": timing.counter("cgg.builds"),
        },
        "grid": {
            "backend": grid_info.get("backend", "inprocess"),
            "workers": grid_info.get("workers", jobs),
            "shard": grid_info.get("shard"),
            "shard_skipped": timing.counter("grid.shard_skipped"),
            "stolen_units": timing.counter("grid.stolen_units"),
            "adopted_units": timing.counter("grid.adopted_units"),
        },
        "fault_tolerance": {
            "failed_units": len(failures),
            "timeouts": timing.counter("grid.timeouts"),
            "retried_units": timing.counter("grid.retried_units"),
            "pool_rebuilds": timing.counter("grid.pool_rebuilds"),
            "resumed_units": timing.counter("grid.resumed_units"),
            "failed_keys": sorted(failure.key for failure in failures),
        },
        # schema v8: the service benchmark (loadgen latency distribution,
        # cold-vs-warm per-request compile walls, dedup credit).  None
        # until `repro report --serve-bench FILE` merges a loadgen run.
        "serve": None,
        "stalls": _stalls_payload(stall_data),
        "counters": snapshot["counters"],
        "phases": snapshot["phases"],
        "baseline": {
            "seed_serial_seconds": SEED_SERIAL_SECONDS,
            "seed_scale": SEED_SCALE,
            "speedup_vs_seed": (
                round(SEED_SERIAL_SECONDS / total_seconds, 2)
                if scale == SEED_SCALE and total_seconds > 0
                else None
            ),
        },
    }
    return payload


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    """The report flags, shared by this module's CLI and ``repro report``."""
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker processes for the evaluation grid "
        "(default: REPRO_JOBS or cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-unit wall-clock budget in seconds "
        "(default: REPRO_UNIT_TIMEOUT or unlimited)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        metavar="SPEC",
        help="evaluation-grid backend: 'local' (process pool), "
        "'inprocess' (serial), 'socket' (spawn local TCP workers), or "
        "'socket:HOST:PORT' (listen for external `repro worker` "
        "processes); default: local pool for --jobs > 1",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="run only shard K of N (keys are hashed to shards; pair "
        "with a shared --resume journal and merge with a final "
        "unsharded resume run)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="checkpoint completed units into this JSONL journal and "
        "reuse any units it already holds (default: REPRO_JOURNAL)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="route up to N same-(target, strategy) units through one "
        "worker task sharing a warmed executable memo "
        "(default: REPRO_BATCH or 1 = unbatched)",
    )
    parser.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="report output: rendered text tables, or one JSON document "
        "(the BENCH payload plus the rendered text and failure list)",
    )
    parser.add_argument(
        "--serve-bench",
        default="",
        metavar="FILE",
        help="merge a scripts/loadgen.py --bench-out document into the "
        "bench payload's 'serve' section (latency percentiles, "
        "throughput, cold-vs-warm compile walls, dedup credit)",
    )
    parser.add_argument(
        "--sim-bench",
        default="",
        metavar="FILE",
        help="merge a scripts/bench_sim.py --profile-sim --json document "
        "into the bench payload's 'sim.self_time' section (warm-"
        "simulation self-time breakdown: generated code, digest/replay, "
        "cache model, dispatch)",
    )
    parser.add_argument(
        "--cache-compare",
        action="store_true",
        help="run the report twice against a fresh artifact-cache "
        "directory (cold, then warm with in-process memos dropped) and "
        "record both walls in the bench payload; fails if the warm "
        "tables are not byte-identical",
    )


def run_report_command(arguments, bench_default: str | None) -> int:
    """Shared driver: run the report, print it, exit nonzero on failures."""
    import os

    resume = arguments.resume or os.environ.get("REPRO_JOURNAL") or None
    bench_out = getattr(arguments, "bench_out", bench_default)
    if getattr(arguments, "cache_compare", False):
        result = generate_cache_compare(
            scale=arguments.scale,
            jobs=arguments.jobs,
            bench_path=bench_out or None,
            timeout=arguments.timeout,
            executor=getattr(arguments, "executor", None),
        )
    else:
        result = generate_report(
            scale=arguments.scale,
            jobs=arguments.jobs,
            bench_path=bench_out or None,
            timeout=arguments.timeout,
            resume=resume,
            executor=getattr(arguments, "executor", None),
            shard=getattr(arguments, "shard", None),
            batch=getattr(arguments, "batch", None),
        )
    serve_bench = getattr(arguments, "serve_bench", "")
    if serve_bench:
        with open(serve_bench) as handle:
            result.bench["serve"] = json.load(handle)
    sim_bench = getattr(arguments, "sim_bench", "")
    if sim_bench:
        with open(sim_bench) as handle:
            result.bench.setdefault("sim", {})["self_time"] = json.load(
                handle
            )
    if (serve_bench or sim_bench) and bench_out:
        # rewrite with the merged section(s) included
        with open(bench_out, "w") as handle:
            json.dump(result.bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if getattr(arguments, "format", "text") == "json":
        print(
            json.dumps(
                {
                    "ok": result.ok,
                    "bench": result.bench,
                    "failures": [
                        failure.summary() for failure in result.failures
                    ],
                    "text": result.text,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(result.text)
    if result.failures:
        print(
            f"report degraded: {len(result.failures)} work unit(s) failed",
            file=sys.stderr,
        )
        return 1
    compare = result.bench.get("cache_compare")
    if compare is not None and not compare["identical_tables"]:
        print(
            "cache-compare: warm tables differ from the cold run",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_report_arguments(parser)
    parser.add_argument(
        "--bench-out",
        default="BENCH_eval.json",
        help="write the machine-readable benchmark record here "
        "('' to disable)",
    )
    arguments = parser.parse_args()
    return run_report_command(arguments, "BENCH_eval.json")


if __name__ == "__main__":
    sys.exit(main())
