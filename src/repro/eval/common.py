"""Shared helpers for the evaluation harness."""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

import repro
from repro.cache import get_cache
from repro.sim import DirectMappedCache, SimResult
from repro.utils import timing
from repro.workloads import kernel_by_id

STRATEGIES = ("postpass", "ips", "rase")

#: bounded per-process executable memo for batched units — maps
#: ``(source, target, CompileOptions)`` to the built executable so
#: every unit of a batch that re-compiles the same program reuses the
#: warmed segment JIT and block-timing memo instead of re-warming from
#: zero.  FIFO-evicted at the cap; executables carry their JIT code
#: cache, so the cap bounds worker memory.
_EXE_MEMO: dict = {}
_EXE_MEMO_CAP = 64
#: nonzero while :func:`run_batch` is driving units — enables the memo
#: without threading a flag through every unit signature
_BATCH_DEPTH = 0


def _target_key(target):
    """A hashable stand-in for a target name or ``TargetMachine``."""
    if isinstance(target, str):
        return target
    return getattr(target, "content_key", None) or id(target)


def _memo_compile(source: str, target, options) -> tuple:
    """Compile through the per-process memo; ``(executable, hit)``."""
    key = (source, _target_key(target), options)
    executable = _EXE_MEMO.get(key)
    if executable is not None:
        return executable, True
    executable = repro.compile_c(source, target, options)
    while len(_EXE_MEMO) >= _EXE_MEMO_CAP:
        _EXE_MEMO.pop(next(iter(_EXE_MEMO)))
    _EXE_MEMO[key] = executable
    return executable, False


@contextmanager
def shared_executables():
    """Enable the executable memo for a whole region of code.

    ``run_batch`` turns the memo on per composite task; this does the
    same for an arbitrary scope — the full report run in one process,
    say — so sections that re-compile the same (kernel, target,
    strategy) triple share one warmed segment JIT and block-timing memo
    instead of unpickling and re-materializing per section.  Nests with
    ``run_batch``; the memo is dropped when the outermost scope exits.
    """
    global _BATCH_DEPTH
    _BATCH_DEPTH += 1
    try:
        yield
    finally:
        _BATCH_DEPTH -= 1
        if _BATCH_DEPTH == 0:
            _EXE_MEMO.clear()


def compile_kernel(source: str, target, options=None):
    """``repro.compile_c`` through the batch memo when one is active.

    Evaluation units should compile through this so batched and
    memo-scoped runs share warmed executables; outside any batch it is
    exactly ``compile_c``.
    """
    options = options or repro.CompileOptions()
    if _BATCH_DEPTH:
        executable, _hit = _memo_compile(source, target, options)
        return executable
    return repro.compile_c(source, target, options)


def run_batch(subtasks: list) -> list:
    """Run many grid units inside one worker task, sharing warm state.

    ``subtasks`` is a list of ``(fn, args, kwargs)`` triples.  Each unit
    runs in order with the executable memo enabled, so units that
    compile the same (source, target, options) — the same kernel under
    several scales, sim options or section passes — share one warmed
    :class:`~repro.sim.jit.SegmentJIT` and block-timing memo.  Returns
    one ``("ok", value)`` or ``("error", payload)`` pair per unit, so a
    failing unit costs only its own slot, exactly as when unbatched.
    """
    from repro.errors import error_payload

    global _BATCH_DEPTH
    results = []
    _BATCH_DEPTH += 1
    try:
        for fn, args, kwargs in subtasks:
            try:
                results.append(("ok", fn(*args, **kwargs)))
            except Exception as error:  # noqa: BLE001 — serialized across
                results.append(("error", error_payload(error)))
    finally:
        _BATCH_DEPTH -= 1
        if _BATCH_DEPTH == 0:
            _EXE_MEMO.clear()
    return results


@dataclass
class KernelRun:
    """One (kernel, strategy) measurement for Table 4."""

    kernel_id: int
    strategy: str
    actual_cycles: int
    estimated_cycles: int
    instructions: int
    code_size: int
    checksum: float
    #: profiled blocks with no scheduler cost entry (should be 0; a
    #: nonzero count means a selector/labeling bug is skewing the ratio)
    unmatched_blocks: int = 0
    #: wall seconds spent compiling / simulating (perf trajectory only —
    #: never part of a table value)
    compile_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: final-pass scheduler stall attribution, summed over the kernel's
    #: functions (reason code -> committed nop slots) — free to collect,
    #: so always filled
    sched_stall_reasons: dict = field(default_factory=dict)
    sched_nop_slots: int = 0
    #: simulator hazard-kind cycle attribution, filled only when the run
    #: used the accounting pipeline model (``run_kernel(breakdown=True)``)
    cycle_breakdown: dict | None = None
    #: block-timing cache lookups (both zero when the run took the
    #: reference interleaved path, e.g. ``breakdown=True``)
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    #: segment-JIT activity (all zero when the JIT is off or the run
    #: took the reference interleaved path).  ``jit_active_segments``
    #: counts compiled *plus* preloaded code at run end, so a warm run
    #: with ``jit_segments == 0`` does not read as "JIT off"
    jit_segments: int = 0
    jit_active_segments: int = 0
    jit_hits: int = 0
    jit_deopts: int = 0
    #: pipeline-state digests computed (first-visit transition replays);
    #: steady state keeps this near zero — see the timing chain in
    #: ``docs/internals.md``
    timing_digests: int = 0
    #: artifact-cache activity during this unit: hit/miss/write deltas
    #: of the process-wide :class:`~repro.cache.ArtifactCache` (``None``
    #: in journals written before the cache existed)
    artifact_cache: dict | None = None

    @property
    def stall_cycles(self) -> int:
        return sum(self.cycle_breakdown.values()) if self.cycle_breakdown else 0

    @property
    def ratio(self) -> float:
        return self.actual_cycles / max(1, self.estimated_cycles)


def estimated_cycles_detailed(
    executable, profile: SimResult
) -> tuple[int, int]:
    """The paper's estimate, plus a mismatch count.

    Per-block scheduler cost x execution frequency ("combining basic block
    execution costs computed by each scheduler with execution frequencies
    computed by a separate profiling tool", so cache misses and
    cross-block stalls are not considered).  The second element counts
    profiled blocks that have *no* cost entry: silently scoring such a
    block as zero would deflate the estimate and inflate the
    actual/estimated ratio, so callers surface the count as a warning.
    """
    machine_program = executable.machine_program
    cost_of: dict[str, int] = {}
    for fn in machine_program.functions:
        for block in fn.blocks:
            cost_of[block.label] = block.schedule_cost
    total = 0
    unmatched = 0
    for label, count in profile.block_counts.items():
        cost = cost_of.get(label)
        if cost is None:
            unmatched += 1
            timing.add("eval.profiled_blocks_without_cost")
            continue
        total += cost * count
    if unmatched:
        warnings.warn(
            f"{unmatched} profiled block(s) have no scheduler cost entry; "
            "the actual/estimated ratio is skewed",
            stacklevel=2,
        )
    return total, unmatched


def estimated_cycles(executable, profile: SimResult) -> int:
    """Back-compat wrapper around :func:`estimated_cycles_detailed`."""
    total, _unmatched = estimated_cycles_detailed(executable, profile)
    return total


def kernel_key(
    section: str, target: str, strategy: str, kernel_id: int
) -> str:
    """The stable grid/journal key for one (target, strategy, kernel) unit."""
    return f"{section}/{target}/{strategy}/K{kernel_id}"


def run_kernel(
    spec,
    target: str,
    strategy: str,
    scale: float = 1.0,
    cache: bool = True,
    breakdown: bool = False,
) -> KernelRun:
    """Compile and simulate one Livermore kernel under one strategy.

    ``breakdown=True`` simulates under the accounting pipeline model,
    filling ``KernelRun.cycle_breakdown`` — about 12% slower in the
    simulator, so Table 4's bulk measurement leaves it off and the
    report's dedicated stall-attribution section turns it on.
    """
    store = get_cache()
    counters_before = store.counters()
    compile_start = time.perf_counter()
    # inside a batch or shared-executable scope, same-program units
    # share one executable, so its JIT and timing memo arrive warm
    executable = compile_kernel(
        spec.source, target, repro.CompileOptions(strategy=strategy)
    )
    compile_seconds = time.perf_counter() - compile_start
    loop, n = spec.args
    n = max(4, int(n * scale))
    data_cache = DirectMappedCache() if cache else None
    sim_start = time.perf_counter()
    result = repro.simulate(
        executable, "bench", args=(loop, n),
        options=repro.SimOptions(cache=data_cache, trace=breakdown),
    )
    sim_seconds = time.perf_counter() - sim_start
    counters_after = store.counters()
    cache_delta = {
        name: counters_after[name] - counters_before[name]
        for name in counters_after
    }
    estimate, unmatched = estimated_cycles_detailed(executable, result)
    sched_reasons: dict[str, int] = {}
    sched_nop_slots = 0
    for stats in executable.machine_program.stats.values():
        for reason, count in stats.stall_reasons.items():
            sched_reasons[reason] = sched_reasons.get(reason, 0) + count
        sched_nop_slots += stats.nop_slots
    return KernelRun(
        kernel_id=spec.id,
        strategy=strategy,
        actual_cycles=result.cycles,
        estimated_cycles=estimate,
        instructions=result.instructions,
        code_size=executable.instruction_count(),
        checksum=result.return_value["double"],
        unmatched_blocks=unmatched,
        compile_seconds=compile_seconds,
        sim_seconds=sim_seconds,
        sched_stall_reasons=sched_reasons,
        sched_nop_slots=sched_nop_slots,
        cycle_breakdown=result.cycle_breakdown,
        block_cache_hits=result.block_cache_hits,
        block_cache_misses=result.block_cache_misses,
        jit_segments=result.jit_segments,
        jit_active_segments=result.jit_active_segments,
        jit_hits=result.jit_hits,
        jit_deopts=result.jit_deopts,
        timing_digests=result.timing_digests,
        artifact_cache=cache_delta,
    )


def grid_run_kernel(
    kernel_id: int,
    target: str,
    strategy: str,
    scale: float = 1.0,
    cache: bool = True,
    breakdown: bool = False,
) -> KernelRun:
    """Picklable :func:`run_kernel` wrapper for the process-pool grid."""
    return run_kernel(
        kernel_by_id(kernel_id),
        target,
        strategy,
        scale=scale,
        cache=cache,
        breakdown=breakdown,
    )
