"""Shared helpers for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass

import repro
from repro.sim import DirectMappedCache, SimResult

STRATEGIES = ("postpass", "ips", "rase")


@dataclass
class KernelRun:
    """One (kernel, strategy) measurement for Table 4."""

    kernel_id: int
    strategy: str
    actual_cycles: int
    estimated_cycles: int
    instructions: int
    code_size: int
    checksum: float

    @property
    def ratio(self) -> float:
        return self.actual_cycles / max(1, self.estimated_cycles)


def estimated_cycles(executable, profile: SimResult) -> int:
    """The paper's estimate: per-block scheduler cost x execution frequency
    ("combining basic block execution costs computed by each scheduler with
    execution frequencies computed by a separate profiling tool", so cache
    misses and cross-block stalls are not considered)."""
    machine_program = executable.machine_program
    cost_of: dict[str, int] = {}
    for fn in machine_program.functions:
        for block in fn.blocks:
            cost_of[block.label] = block.schedule_cost
    total = 0
    for label, count in profile.block_counts.items():
        total += cost_of.get(label, 0) * count
    return total


def run_kernel(
    spec,
    target: str,
    strategy: str,
    scale: float = 1.0,
    cache: bool = True,
) -> KernelRun:
    """Compile and simulate one Livermore kernel under one strategy."""
    executable = repro.compile_c(spec.source, target, strategy=strategy)
    loop, n = spec.args
    n = max(4, int(n * scale))
    data_cache = DirectMappedCache() if cache else None
    result = repro.simulate(executable, "bench", args=(loop, n), cache=data_cache)
    return KernelRun(
        kernel_id=spec.id,
        strategy=strategy,
        actual_cycles=result.cycles,
        estimated_cycles=estimated_cycles(executable, result),
        instructions=result.instructions,
        code_size=executable.instruction_count(),
        checksum=result.return_value["double"],
    )
