"""Table 4 — Livermore Loops: execution time and actual/estimated ratio.

For kernels 1-14 and each strategy: the *actual* cycles come from the
pipeline simulator with the data cache enabled (our DECstation stand-in);
the *estimated* cycles combine each block's scheduler cost with profiled
execution frequencies, exactly as the paper computed its estimates (and
therefore exclude cache misses and cross-block stalls).  The shape to
reproduce: ratios >= 1, varying per kernel, and consistent across the
three strategies for each kernel; means in the same band as the paper's
1.06.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.common import STRATEGIES, KernelRun, run_kernel
from repro.utils.stats import arithmetic_mean, harmonic_mean
from repro.utils.tables import TextTable
from repro.workloads import LIVERMORE_KERNELS


@dataclass
class Table4Data:
    #: runs[kernel_id][strategy]
    runs: dict[int, dict[str, KernelRun]] = field(default_factory=dict)

    def cycles(self, kernel_id: int, strategy: str) -> int:
        return self.runs[kernel_id][strategy].actual_cycles

    def ratio(self, kernel_id: int, strategy: str) -> float:
        return self.runs[kernel_id][strategy].ratio

    def mean_cycles(self, strategy: str) -> float:
        return arithmetic_mean(
            self.cycles(k, strategy) for k in sorted(self.runs)
        )

    def mean_ratio(self, strategy: str) -> float:
        return harmonic_mean(
            self.ratio(k, strategy) for k in sorted(self.runs)
        )


def measure(
    target: str = "r2000",
    kernels=None,
    scale: float = 1.0,
    cache: bool = True,
) -> Table4Data:
    specs = kernels or LIVERMORE_KERNELS
    data = Table4Data()
    for spec in specs:
        data.runs[spec.id] = {}
        for strategy in STRATEGIES:
            data.runs[spec.id][strategy] = run_kernel(
                spec, target, strategy, scale=scale, cache=cache
            )
    return data


def table4(
    target: str = "r2000", kernels=None, scale: float = 1.0, cache: bool = True
) -> str:
    data = measure(target=target, kernels=kernels, scale=scale, cache=cache)
    table = TextTable(
        [
            "Ker",
            "Postp kc",
            "IPS kc",
            "RASE kc",
            "Postp a/e",
            "IPS a/e",
            "RASE a/e",
        ],
        title=(
            "Table 4: Livermore Loops on the "
            f"{target} — simulated kilocycles and actual/estimated ratio"
        ),
    )
    for kernel_id in sorted(data.runs):
        cells = [kernel_id]
        for strategy in STRATEGIES:
            cells.append(f"{data.cycles(kernel_id, strategy) / 1000:.1f}")
        for strategy in STRATEGIES:
            cells.append(f"{data.ratio(kernel_id, strategy):.2f}")
        table.add_row(*cells)
    means = ["mean"]
    for strategy in STRATEGIES:
        means.append(f"{data.mean_cycles(strategy) / 1000:.1f}")
    for strategy in STRATEGIES:
        means.append(f"{data.mean_ratio(strategy):.2f}")
    table.add_row(*means)
    return str(table)
