"""Table 4 — Livermore Loops: execution time and actual/estimated ratio.

For kernels 1-14 and each strategy: the *actual* cycles come from the
pipeline simulator with the data cache enabled (our DECstation stand-in);
the *estimated* cycles combine each block's scheduler cost with profiled
execution frequencies, exactly as the paper computed its estimates (and
therefore exclude cache misses and cross-block stalls).  The shape to
reproduce: ratios >= 1, varying per kernel, and consistent across the
three strategies for each kernel; means in the same band as the paper's
1.06.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.common import STRATEGIES, KernelRun, grid_run_kernel
from repro.eval.grid import GridTask, run_grid
from repro.utils.stats import arithmetic_mean, harmonic_mean
from repro.utils.tables import TextTable
from repro.workloads import LIVERMORE_KERNELS


@dataclass
class Table4Data:
    #: runs[kernel_id][strategy]
    runs: dict[int, dict[str, KernelRun]] = field(default_factory=dict)

    @property
    def unmatched_blocks(self) -> int:
        """Profiled blocks with no scheduler cost entry, summed."""
        return sum(
            run.unmatched_blocks
            for by_strategy in self.runs.values()
            for run in by_strategy.values()
        )

    def cycles(self, kernel_id: int, strategy: str) -> int:
        return self.runs[kernel_id][strategy].actual_cycles

    def ratio(self, kernel_id: int, strategy: str) -> float:
        return self.runs[kernel_id][strategy].ratio

    def mean_cycles(self, strategy: str) -> float:
        return arithmetic_mean(
            self.cycles(k, strategy) for k in sorted(self.runs)
        )

    def mean_ratio(self, strategy: str) -> float:
        return harmonic_mean(
            self.ratio(k, strategy) for k in sorted(self.runs)
        )


def measure(
    target: str = "r2000",
    kernels=None,
    scale: float = 1.0,
    cache: bool = True,
    jobs: int | None = None,
) -> Table4Data:
    specs = kernels or LIVERMORE_KERNELS
    units = [
        GridTask(
            grid_run_kernel,
            (spec.id, target, strategy),
            {"scale": scale, "cache": cache},
        )
        for spec in specs
        for strategy in STRATEGIES
    ]
    results = run_grid(units, jobs=jobs, label="table4")
    data = Table4Data()
    for run in results:
        data.runs.setdefault(run.kernel_id, {})[run.strategy] = run
    return data


def table4(
    target: str = "r2000",
    kernels=None,
    scale: float = 1.0,
    cache: bool = True,
    jobs: int | None = None,
) -> str:
    data = measure(
        target=target, kernels=kernels, scale=scale, cache=cache, jobs=jobs
    )
    return render(data, target=target)


def render(data: Table4Data, target: str = "r2000") -> str:
    table = TextTable(
        [
            "Ker",
            "Postp kc",
            "IPS kc",
            "RASE kc",
            "Postp a/e",
            "IPS a/e",
            "RASE a/e",
        ],
        title=(
            "Table 4: Livermore Loops on the "
            f"{target} — simulated kilocycles and actual/estimated ratio"
        ),
    )
    for kernel_id in sorted(data.runs):
        cells = [kernel_id]
        for strategy in STRATEGIES:
            cells.append(f"{data.cycles(kernel_id, strategy) / 1000:.1f}")
        for strategy in STRATEGIES:
            cells.append(f"{data.ratio(kernel_id, strategy):.2f}")
        table.add_row(*cells)
    means = ["mean"]
    for strategy in STRATEGIES:
        means.append(f"{data.mean_cycles(strategy) / 1000:.1f}")
    for strategy in STRATEGIES:
        means.append(f"{data.mean_ratio(strategy):.2f}")
    table.add_row(*means)
    text = str(table)
    if data.unmatched_blocks:
        text += (
            f"\nWARNING: {data.unmatched_blocks} profiled block(s) had no "
            "scheduler cost entry — actual/estimated ratios are skewed"
        )
    return text
