"""Table 4 — Livermore Loops: execution time and actual/estimated ratio.

For kernels 1-14 and each strategy: the *actual* cycles come from the
pipeline simulator with the data cache enabled (our DECstation stand-in);
the *estimated* cycles combine each block's scheduler cost with profiled
execution frequencies, exactly as the paper computed its estimates (and
therefore exclude cache misses and cross-block stalls).  The shape to
reproduce: ratios >= 1, varying per kernel, and consistent across the
three strategies for each kernel; means in the same band as the paper's
1.06.

Under a fault-tolerant grid (``GridOptions(failures="collect")``) a unit
that times out or crashes leaves a FAILED cell in its (kernel, strategy)
slot rather than aborting the table; strategy means are computed over
the surviving kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.common import STRATEGIES, KernelRun, grid_run_kernel, kernel_key
from repro.eval.grid import (
    GridFailure,
    GridOptions,
    GridTask,
    run_grid,
    with_jobs,
)
from repro.utils.stats import arithmetic_mean, harmonic_mean
from repro.utils.tables import TextTable
from repro.workloads import LIVERMORE_KERNELS


@dataclass
class Table4Data:
    #: runs[kernel_id][strategy]
    runs: dict[int, dict[str, KernelRun]] = field(default_factory=dict)
    #: failures[(kernel_id, strategy)] — units that produced no KernelRun
    failures: dict[tuple[int, str], GridFailure] = field(default_factory=dict)

    @property
    def unmatched_blocks(self) -> int:
        """Profiled blocks with no scheduler cost entry, summed."""
        return sum(
            run.unmatched_blocks
            for by_strategy in self.runs.values()
            for run in by_strategy.values()
        )

    def cycles(self, kernel_id: int, strategy: str) -> int:
        return self.runs[kernel_id][strategy].actual_cycles

    def ratio(self, kernel_id: int, strategy: str) -> float:
        return self.runs[kernel_id][strategy].ratio

    def _complete(self, strategy: str) -> list[int]:
        return [k for k in sorted(self.runs) if strategy in self.runs[k]]

    def mean_cycles(self, strategy: str) -> float:
        return arithmetic_mean(
            self.cycles(k, strategy) for k in self._complete(strategy)
        )

    def mean_ratio(self, strategy: str) -> float:
        return harmonic_mean(
            self.ratio(k, strategy) for k in self._complete(strategy)
        )


def measure(
    target: str = "r2000",
    kernels=None,
    scale: float = 1.0,
    cache: bool = True,
    jobs: int | None = None,
    options: GridOptions | None = None,
) -> Table4Data:
    specs = kernels or LIVERMORE_KERNELS
    labels = [
        (spec.id, strategy) for spec in specs for strategy in STRATEGIES
    ]
    units = [
        GridTask(
            kernel_key("table4", target, strategy, spec.id),
            grid_run_kernel,
            (spec.id, target, strategy),
            {"scale": scale, "cache": cache},
            batch_key=f"{target}/{strategy}",
        )
        for spec in specs
        for strategy in STRATEGIES
    ]
    results = run_grid(units, with_jobs(options, jobs), label="table4")
    data = Table4Data()
    for (kernel_id, strategy), outcome in zip(labels, results):
        if isinstance(outcome, GridFailure):
            data.failures[(kernel_id, strategy)] = outcome
        else:
            data.runs.setdefault(kernel_id, {})[strategy] = outcome
    return data


def table4(
    target: str = "r2000",
    kernels=None,
    scale: float = 1.0,
    cache: bool = True,
    jobs: int | None = None,
    options: GridOptions | None = None,
) -> str:
    data = measure(
        target=target,
        kernels=kernels,
        scale=scale,
        cache=cache,
        jobs=jobs,
        options=options,
    )
    return render(data, target=target)


def render(data: Table4Data, target: str = "r2000") -> str:
    table = TextTable(
        [
            "Ker",
            "Postp kc",
            "IPS kc",
            "RASE kc",
            "Postp a/e",
            "IPS a/e",
            "RASE a/e",
        ],
        title=(
            "Table 4: Livermore Loops on the "
            f"{target} — simulated kilocycles and actual/estimated ratio"
        ),
    )
    kernel_ids = sorted(
        set(data.runs) | {kernel_id for kernel_id, _ in data.failures}
    )
    for kernel_id in kernel_ids:
        cells: list = [kernel_id]
        by_strategy = data.runs.get(kernel_id, {})
        for strategy in STRATEGIES:
            if strategy in by_strategy:
                cells.append(f"{data.cycles(kernel_id, strategy) / 1000:.1f}")
            else:
                cells.append("FAILED")
        for strategy in STRATEGIES:
            if strategy in by_strategy:
                cells.append(f"{data.ratio(kernel_id, strategy):.2f}")
            else:
                cells.append("-")
        table.add_row(*cells)
    means = ["mean"]
    for strategy in STRATEGIES:
        survivors = data._complete(strategy)
        means.append(
            f"{data.mean_cycles(strategy) / 1000:.1f}" if survivors else "-"
        )
    for strategy in STRATEGIES:
        survivors = data._complete(strategy)
        means.append(
            f"{data.mean_ratio(strategy):.2f}" if survivors else "-"
        )
    table.add_row(*means)
    text = str(table)
    if data.failures:
        lines = "\n".join(
            f"  {failure.summary()}"
            for _, failure in sorted(data.failures.items())
        )
        text += (
            f"\nFAILED units ({len(data.failures)}; means cover the "
            f"surviving kernels only):\n{lines}"
        )
    if data.unmatched_blocks:
        text += (
            f"\nWARNING: {data.unmatched_blocks} profiled block(s) had no "
            "scheduler cost entry — actual/estimated ratios are skewed"
        )
    return text
