"""The evaluation harness: regenerates every table and figure of the
paper's section 5 (see DESIGN.md's experiment index).

* :mod:`repro.eval.table1` — Maril machine description statistics
* :mod:`repro.eval.table2` — system source code size by phase
* :mod:`repro.eval.table3` — compile time and dilation
* :mod:`repro.eval.table4` — Livermore Loops: execution time and
  actual/estimated ratios
* :mod:`repro.eval.figure7` — the i860 dual-operation schedule
* :mod:`repro.eval.claims` — the section-5 headline comparisons
* :mod:`repro.eval.ablation` — design-choice ablations (temporal
  scheduling; the max-distance heuristic)
* :mod:`repro.eval.grid` — the fault-tolerant parallel work-unit grid
* :mod:`repro.eval.journal` — checkpoint/resume journal for the grid
* :mod:`repro.eval.report` — runs everything and renders EXPERIMENTS.md
"""

from repro.eval.table1 import table1
from repro.eval.table2 import table2
from repro.eval.table3 import table3
from repro.eval.table4 import table4
from repro.eval.figure7 import figure7
from repro.eval.claims import claim_strategy_speedup, claim_compile_time_ordering
from repro.eval.ablation import ablation_temporal, ablation_heuristic
from repro.eval.executors import Executor
from repro.eval.grid import (
    FailureCollector,
    GridFailure,
    GridOptions,
    GridTask,
    resolve_jobs,
    resolve_timeout,
    run_grid,
)
from repro.eval.journal import Journal

__all__ = [
    "Executor",
    "FailureCollector",
    "GridFailure",
    "GridOptions",
    "GridTask",
    "Journal",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure7",
    "claim_strategy_speedup",
    "claim_compile_time_ordering",
    "ablation_temporal",
    "ablation_heuristic",
    "resolve_jobs",
    "resolve_timeout",
    "run_grid",
]
