"""Table 2 — system source code size by phase.

The paper splits Marion's C sources into the code generator generator,
the target- and strategy-independent part, per-target dependent parts and
per-strategy dependent parts.  We report the same split over this
repository's Python sources: the shape to reproduce is TSI being the
largest hand-written piece, the i860 target description being the largest
target, and RASE > IPS > Postpass among strategies.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.utils.tables import TextTable

_ROOT = Path(repro.__file__).parent

#: phase -> list of package-relative paths (files or directories)
PHASES = {
    "Code Generator Generator (CGG)": ["maril", "cgg"],
    "Target- and strategy-independent (TSI)": [
        "il",
        "frontend",
        "machine",
        "backend/insts.py",
        "backend/values.py",
        "backend/mfunc.py",
        "backend/lower.py",
        "backend/glue.py",
        "backend/selector.py",
        "backend/codedag.py",
        "backend/scheduler.py",
        "backend/layout.py",
        "backend/delayfill.py",
        "backend/liveness.py",
        "backend/interference.py",
        "backend/regalloc.py",
        "backend/memaccess.py",
        "backend/frame.py",
        "backend/asmprinter.py",
        "backend/codegen.py",
        "program.py",
        "sim",
    ],
    "Target-dependent (TD), TOYP": ["targets/toyp.py"],
    "Target-dependent (TD), 88000": ["targets/m88000.py"],
    "Target-dependent (TD), R2000": ["targets/r2000.py"],
    "Target-dependent (TD), i860": ["targets/i860.py"],
    "Strategy-dependent (SD), Postpass": ["backend/strategies/postpass.py"],
    "Strategy-dependent (SD), IPS": ["backend/strategies/ips.py"],
    "Strategy-dependent (SD), RASE": ["backend/strategies/rase.py"],
}


def count_lines(path: Path) -> int:
    """Non-blank source lines in a file or directory tree."""
    if path.is_dir():
        return sum(count_lines(child) for child in sorted(path.glob("*.py")))
    return sum(
        1 for line in path.read_text().splitlines() if line.strip()
    )


def phase_sizes() -> dict[str, int]:
    sizes = {}
    for phase, entries in PHASES.items():
        sizes[phase] = sum(count_lines(_ROOT / entry) for entry in entries)
    return sizes


def table2() -> str:
    table = TextTable(
        ["Phase", "Lines"],
        title="Table 2: Marion system source code size (non-blank Python lines)",
    )
    for phase, size in phase_sizes().items():
        table.add_row(phase, size)
    return str(table)
