"""The compile-time program suite (Table 3 substitute).

The paper times its back ends compiling the NAS Kernel, SPHOT, ARC2D and
Lcc itself.  We cannot obtain those; this suite provides the same *mix* —
dense floating point kernels, branchy integer code, recursion, and a
table-driven interpreter (the "compiler-like" program) — with enough
volume to rank strategies and targets by compilation time, and it runs
under the simulator so Table 3's dilation column can be measured too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class SuiteProgram:
    name: str
    source: str
    entry: str
    args: tuple
    reference: Callable[..., float]


# ---------------------------------------------------------------------------
# matrix: dense double-precision linear algebra
# ---------------------------------------------------------------------------

_MATRIX_SRC = """
double a[24][24], b[24][24], c[24][24];
int mseed;

double mrnd(void) {
    int v;
    mseed = mseed * 1103515245 + 12345;
    v = mseed;
    if (v < 0) { v = -v; }
    return (double)(v % 1000) / 1000.0 + 0.001;
}

void minit(int n) {
    int i, j;
    mseed = 1234;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            a[i][j] = mrnd();
            b[i][j] = mrnd();
            c[i][j] = 0.0;
        }
    }
}

void matmul(int n) {
    int i, j, k;
    double s;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            s = 0.0;
            for (k = 0; k < n; k++) { s = s + a[i][k] * b[k][j]; }
            c[i][j] = s;
        }
    }
}

double trace(int n) {
    int i;
    double t = 0.0;
    for (i = 0; i < n; i++) { t = t + c[i][i]; }
    return t;
}

double frobenius(int n) {
    int i, j;
    double t = 0.0;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) { t = t + c[i][j] * c[i][j]; }
    }
    return t;
}

double matrix_main(int n) {
    minit(n);
    matmul(n);
    return trace(n) + frobenius(n);
}
"""


def _matrix_ref(n: int) -> float:
    seed = 1234

    def rnd():
        nonlocal seed
        seed = ((seed * 1103515245 + 12345) & 0xFFFFFFFF)
        if seed > 0x7FFFFFFF:
            seed -= 0x100000000
        v = seed if seed >= 0 else -seed
        return (v % 1000) / 1000.0 + 0.001

    a = [[0.0] * 24 for _ in range(24)]
    b = [[0.0] * 24 for _ in range(24)]
    c = [[0.0] * 24 for _ in range(24)]
    for i in range(n):
        for j in range(n):
            a[i][j] = rnd()
            b[i][j] = rnd()
    for i in range(n):
        for j in range(n):
            s = 0.0
            for k in range(n):
                s = s + a[i][k] * b[k][j]
            c[i][j] = s
    t = 0.0
    for i in range(n):
        t = t + c[i][i]
    f = 0.0
    for i in range(n):
        for j in range(n):
            f = f + c[i][j] * c[i][j]
    return t + f


# ---------------------------------------------------------------------------
# intsort: branchy integer code (sieve + quicksort + checksum)
# ---------------------------------------------------------------------------

_INTSORT_SRC = """
int data[512];
int flags[512];

void fill(int n) {
    int i, v;
    v = 12345;
    for (i = 0; i < n; i++) {
        v = (v * 25173 + 13849) % 65536;
        data[i] = v % 1000;
    }
}

int sieve(int n) {
    int i, j, count;
    for (i = 0; i < n; i++) { flags[i] = 1; }
    count = 0;
    for (i = 2; i < n; i++) {
        if (flags[i]) {
            count++;
            for (j = i + i; j < n; j = j + i) { flags[j] = 0; }
        }
    }
    return count;
}

void quicksort(int lo, int hi) {
    int i, j, pivot, tmp;
    if (lo >= hi) { return; }
    pivot = data[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (data[i] < pivot) { i++; }
        while (data[j] > pivot) { j--; }
        if (i <= j) {
            tmp = data[i];
            data[i] = data[j];
            data[j] = tmp;
            i++;
            j--;
        }
    }
    quicksort(lo, j);
    quicksort(i, hi);
}

int intsort_main(int n) {
    int i, check;
    fill(n);
    quicksort(0, n - 1);
    check = sieve(n);
    for (i = 1; i < n; i++) {
        if (data[i - 1] > data[i]) { return -1; }
    }
    for (i = 0; i < n; i++) { check = (check + data[i] * i) % 100003; }
    return check;
}
"""


def _intsort_ref(n: int) -> int:
    v = 12345
    data = []
    for i in range(n):
        v = (v * 25173 + 13849) % 65536
        data.append(v % 1000)
    data.sort()
    flags = [1] * n
    count = 0
    for i in range(2, n):
        if flags[i]:
            count += 1
            for j in range(i + i, n, i):
                flags[j] = 0
    check = count
    for i in range(n):
        check = (check + data[i] * i) % 100003
    return check


# ---------------------------------------------------------------------------
# recurse: recursion-heavy integer code
# ---------------------------------------------------------------------------

_RECURSE_SRC = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

int ack(int m, int n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}

int gcd(int a, int b) {
    if (b == 0) { return a; }
    return gcd(b, a % b);
}

int recurse_main(int n) {
    return fib(n) + ack(2, 3) + gcd(1071, 462);
}
"""


def _fib(n):
    return n if n < 2 else _fib(n - 1) + _fib(n - 2)


def _ack(m, n):
    if m == 0:
        return n + 1
    if n == 0:
        return _ack(m - 1, 1)
    return _ack(m - 1, _ack(m, n - 1))


def _recurse_ref(n: int) -> int:
    import math

    return _fib(n) + _ack(2, 3) + math.gcd(1071, 462)


# ---------------------------------------------------------------------------
# interp: a table-driven bytecode interpreter (the "compiler-like" program)
# ---------------------------------------------------------------------------

_INTERP_SRC = """
int code[64];
int stack[64];

void load_program(void) {
    /* computes sum of squares 1..k for k supplied at run time:
       ops: 0 halt, 1 push-imm, 2 add, 3 mul, 4 dup, 5 swap,
            6 jump-if-counter-zero, 7 jump, 8 pop-sub-counter,
            9 push-counter */
    code[0] = 1;  code[1] = 0;     /* push 0 (the accumulator)  */
    code[2] = 6;  code[3] = 13;    /* if counter == 0 -> halt   */
    code[4] = 9;                   /* push counter              */
    code[5] = 9;                   /* push counter              */
    code[6] = 3;                   /* mul -> counter^2          */
    code[7] = 2;                   /* add into the accumulator  */
    code[8] = 1;  code[9] = 1;     /* push 1                    */
    code[10] = 8;                  /* counter -= pop()          */
    code[11] = 7; code[12] = 2;    /* jump to the loop head     */
    code[13] = 0;                  /* halt                      */
}

int interp(int counter) {
    int pc, sp, op, a, b;
    pc = 0;
    sp = 0;
    while (1) {
        op = code[pc];
        pc++;
        if (op == 0) { break; }
        if (op == 1) { stack[sp] = code[pc]; pc++; sp++; continue; }
        if (op == 2) { sp--; a = stack[sp]; sp--; b = stack[sp];
                       stack[sp] = a + b; sp++; continue; }
        if (op == 3) { sp--; a = stack[sp]; sp--; b = stack[sp];
                       stack[sp] = a * b; sp++; continue; }
        if (op == 4) { stack[sp] = stack[sp - 1]; sp++; continue; }
        if (op == 5) { a = stack[sp - 1]; stack[sp - 1] = stack[sp - 2];
                       stack[sp - 2] = a; continue; }
        if (op == 6) { if (counter == 0) { pc = code[pc]; } else { pc++; }
                       continue; }
        if (op == 7) { pc = code[pc]; continue; }
        if (op == 8) { sp--; a = stack[sp]; counter = counter - a; continue; }
        if (op == 9) { stack[sp] = counter; sp++; continue; }
        return -1;
    }
    sp--;
    return stack[sp];
}

int interp_main(int k) {
    load_program();
    return interp(k);
}
"""


def _interp_ref(k: int) -> int:
    return sum(i * i for i in range(1, k + 1))


# ---------------------------------------------------------------------------
# stencil: a second dense floating point program (keeps the suite's mix
# close to the paper's numeric-heavy one, and exercises the i860 back end's
# sub-operation expansion heavily)
# ---------------------------------------------------------------------------

_STENCIL_SRC = """
double grid[34][34], next[34][34];

void ginit(int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            grid[i][j] = (double)(i * 31 + j * 17 % 13) * 0.01;
            next[i][j] = 0.0;
        }
    }
}

void smooth(int n) {
    int i, j;
    for (i = 1; i < n - 1; i++) {
        for (j = 1; j < n - 1; j++) {
            next[i][j] = 0.2 * (grid[i][j] + grid[i - 1][j] + grid[i + 1][j]
                                + grid[i][j - 1] + grid[i][j + 1]);
        }
    }
    for (i = 1; i < n - 1; i++) {
        for (j = 1; j < n - 1; j++) { grid[i][j] = next[i][j]; }
    }
}

double residual(int n) {
    int i, j;
    double s = 0.0, d;
    for (i = 1; i < n - 1; i++) {
        for (j = 1; j < n - 1; j++) {
            d = grid[i][j] - next[i][j];
            s = s + d * d;
        }
    }
    return s;
}

double energy(int n) {
    int i, j;
    double s = 0.0;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) { s = s + grid[i][j] * grid[i][j]; }
    }
    return s;
}

double stencil_main(int n) {
    int step;
    ginit(n);
    for (step = 0; step < 3; step++) { smooth(n); }
    return energy(n) + residual(n);
}
"""


def _stencil_ref(n: int) -> float:
    grid = [[0.0] * 34 for _ in range(34)]
    nxt = [[0.0] * 34 for _ in range(34)]
    for i in range(n):
        for j in range(n):
            grid[i][j] = float(i * 31 + j * 17 % 13) * 0.01
            nxt[i][j] = 0.0
    for _ in range(3):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                nxt[i][j] = 0.2 * (
                    grid[i][j] + grid[i - 1][j] + grid[i + 1][j]
                    + grid[i][j - 1] + grid[i][j + 1]
                )
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                grid[i][j] = nxt[i][j]
    s = 0.0
    for i in range(n):
        for j in range(n):
            s = s + grid[i][j] * grid[i][j]
    r = 0.0
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            d = grid[i][j] - nxt[i][j]
            r = r + d * d
    return s + r


PROGRAM_SUITE: list[SuiteProgram] = [
    SuiteProgram("matrix", _MATRIX_SRC, "matrix_main", (16,), _matrix_ref),
    SuiteProgram("stencil", _STENCIL_SRC, "stencil_main", (20,), _stencil_ref),
    SuiteProgram("intsort", _INTSORT_SRC, "intsort_main", (200,), _intsort_ref),
    SuiteProgram("recurse", _RECURSE_SRC, "recurse_main", (12,), _recurse_ref),
    SuiteProgram("interp", _INTERP_SRC, "interp_main", (40,), _interp_ref),
]
