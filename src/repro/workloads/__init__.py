"""Workloads: the Livermore Loops (Table 4) and the compile-time program
suite (Table 3 substitute)."""

from repro.workloads.livermore import LIVERMORE_KERNELS, KernelSpec, kernel_by_id
from repro.workloads.suite import PROGRAM_SUITE, SuiteProgram

__all__ = [
    "LIVERMORE_KERNELS",
    "KernelSpec",
    "kernel_by_id",
    "PROGRAM_SUITE",
    "SuiteProgram",
]
