"""The first fourteen Livermore Loops, in the C subset (Table 4).

Each kernel is a self-contained translation unit with its own arrays, a
deterministic ``init`` routine (a 32-bit LCG, so initialisation also runs
through the compiler and simulator) and a ``kernel`` function returning a
checksum.  ``reference()`` computes the same checksum in pure Python with
the same operation order, validating functional correctness of the whole
compiler + simulator stack; both sides use IEEE doubles.

Array sizes are the classic McMahon sizes; the iteration counts are
parameters so tests can run scaled-down instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

_M31 = 2147483647


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value > 0x7FFFFFFF else value


class _LCG:
    """Mirror of the in-kernel C random number generator."""

    def __init__(self, seed: int = 42):
        self.seed = seed

    def next(self) -> float:
        self.seed = _wrap32(self.seed * 1103515245 + 12345)
        value = self.seed
        if value < 0:
            value = -value
        return (value % 10000) / 10000.0 + 0.01


_C_RANDOM = """
int seed;

double rnd(void) {
    int v;
    seed = seed * 1103515245 + 12345;
    v = seed;
    if (v < 0) { v = -v; }
    return (double)(v % 10000) / 10000.0 + 0.01;
}
"""


@dataclass(frozen=True)
class KernelSpec:
    id: int
    name: str
    source: str
    #: arguments passed to kernel(...) — the loop count
    args: tuple
    reference: Callable[..., float]

    @property
    def entry(self) -> str:
        return "kernel"

    @property
    def init(self) -> str:
        return "init"


# ---------------------------------------------------------------------------
# Kernel 1 — hydro fragment
# ---------------------------------------------------------------------------

_K1_SRC = _C_RANDOM + """
double x[1001], y[1001], z[1012];
double q, r, t;

void init(void) {
    int k;
    seed = 42;
    q = rnd(); r = rnd(); t = rnd();
    for (k = 0; k < 1001; k++) { x[k] = 0.0; y[k] = rnd(); }
    for (k = 0; k < 1012; k++) { z[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, k;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (k = 0; k < n; k++) {
            x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
        }
    }
    for (k = 0; k < n; k++) { s = s + x[k]; }
    return s;
}
"""


def _k1_ref(loop: int, n: int) -> float:
    rng = _LCG()
    q, r, t = rng.next(), rng.next(), rng.next()
    x = [0.0] * 1001
    y = [rng.next() for _ in range(1001)]
    z = [rng.next() for _ in range(1012)]
    for _ in range(loop):
        for k in range(n):
            x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11])
    return _fsum(x, n)


def _fsum(values, n) -> float:
    s = 0.0
    for k in range(n):
        s = s + values[k]
    return s


# ---------------------------------------------------------------------------
# Kernel 2 — incomplete Cholesky conjugate gradient excerpt
# ---------------------------------------------------------------------------

_K2_SRC = _C_RANDOM + """
double x[1001], v[1001];

void init(void) {
    int k;
    seed = 7;
    for (k = 0; k < 1001; k++) { x[k] = rnd(); v[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, k, i, ii, ipnt, ipntp;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        ii = n;
        ipntp = 0;
        while (ii > 1) {
            ipnt = ipntp;
            ipntp = ipntp + ii;
            ii = ii / 2;
            i = ipntp - 1;
            for (k = ipnt + 1; k < ipntp; k = k + 2) {
                i = i + 1;
                x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
            }
        }
    }
    for (k = 0; k < n; k++) { s = s + x[k]; }
    return s;
}
"""


def _k2_ref(loop: int, n: int) -> float:
    rng = _LCG(7)
    x = [0.0] * 1001
    v = [0.0] * 1001
    for k in range(1001):
        x[k] = rng.next()
        v[k] = rng.next()
    for _ in range(loop):
        ii = n
        ipntp = 0
        while ii > 1:
            ipnt = ipntp
            ipntp = ipntp + ii
            ii = ii // 2
            i = ipntp - 1
            for k in range(ipnt + 1, ipntp, 2):
                i += 1
                x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1]
    return _fsum(x, n)


# ---------------------------------------------------------------------------
# Kernel 3 — inner product
# ---------------------------------------------------------------------------

_K3_SRC = _C_RANDOM + """
double x[1001], z[1001];

void init(void) {
    int k;
    seed = 3;
    for (k = 0; k < 1001; k++) { x[k] = rnd(); z[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, k;
    double q = 0.0;
    for (l = 0; l < loop; l++) {
        q = 0.0;
        for (k = 0; k < n; k++) { q = q + z[k] * x[k]; }
    }
    return q;
}
"""


def _k3_ref(loop: int, n: int) -> float:
    rng = _LCG(3)
    x = [0.0] * 1001
    z = [0.0] * 1001
    for k in range(1001):
        x[k] = rng.next()
        z[k] = rng.next()
    q = 0.0
    for _ in range(loop):
        q = 0.0
        for k in range(n):
            q = q + z[k] * x[k]
    return q


# ---------------------------------------------------------------------------
# Kernel 4 — banded linear equations
# ---------------------------------------------------------------------------

_K4_SRC = _C_RANDOM + """
double x[1501], y[1001];

void init(void) {
    int k;
    seed = 4;
    for (k = 0; k < 1501; k++) { x[k] = rnd(); }
    for (k = 0; k < 1001; k++) { y[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, k, j, lw, m;
    double temp, s;
    m = (1001 - 7) / 2;
    for (l = 0; l < loop; l++) {
        for (k = 6; k < 1001; k = k + m) {
            lw = k - 6;
            temp = x[k - 1];
            for (j = 4; j < n; j = j + 5) {
                temp = temp - x[lw] * y[j];
                lw = lw + 1;
            }
            x[k - 1] = y[4] * temp;
        }
    }
    s = 0.0;
    for (k = 0; k < 1001; k++) { s = s + x[k]; }
    return s;
}
"""


def _k4_ref(loop: int, n: int) -> float:
    rng = _LCG(4)
    x = [rng.next() for _ in range(1501)]
    y = [rng.next() for _ in range(1001)]
    m = (1001 - 7) // 2
    for _ in range(loop):
        for k in range(6, 1001, m):
            lw = k - 6
            temp = x[k - 1]
            for j in range(4, n, 5):
                temp = temp - x[lw] * y[j]
                lw += 1
            x[k - 1] = y[4] * temp
    return _fsum(x, 1001)


# ---------------------------------------------------------------------------
# Kernel 5 — tri-diagonal elimination, below diagonal
# ---------------------------------------------------------------------------

_K5_SRC = _C_RANDOM + """
double x[1001], y[1001], z[1001];

void init(void) {
    int k;
    seed = 5;
    for (k = 0; k < 1001; k++) { x[k] = rnd(); y[k] = rnd(); z[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, i;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (i = 1; i < n; i++) {
            x[i] = z[i] * (y[i] - x[i - 1]);
        }
    }
    for (i = 0; i < n; i++) { s = s + x[i]; }
    return s;
}
"""


def _k5_ref(loop: int, n: int) -> float:
    rng = _LCG(5)
    x = [0.0] * 1001
    y = [0.0] * 1001
    z = [0.0] * 1001
    for k in range(1001):
        x[k] = rng.next()
        y[k] = rng.next()
        z[k] = rng.next()
    for _ in range(loop):
        for i in range(1, n):
            x[i] = z[i] * (y[i] - x[i - 1])
    return _fsum(x, n)


# ---------------------------------------------------------------------------
# Kernel 6 — general linear recurrence equations
# ---------------------------------------------------------------------------

_K6_SRC = _C_RANDOM + """
double w[64];
double b[64][64];

void init(void) {
    int i, j;
    seed = 6;
    for (i = 0; i < 64; i++) {
        w[i] = 0.0;
        for (j = 0; j < 64; j++) { b[i][j] = rnd() * 0.01; }
    }
}

double kernel(int loop, int n) {
    int l, i, k;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (i = 1; i < n; i++) {
            w[i] = 0.0100;
            for (k = 0; k < i; k++) {
                w[i] = w[i] + b[k][i] * w[(i - k) - 1];
            }
        }
    }
    for (i = 0; i < n; i++) { s = s + w[i]; }
    return s;
}
"""


def _k6_ref(loop: int, n: int) -> float:
    rng = _LCG(6)
    w = [0.0] * 64
    b = [[0.0] * 64 for _ in range(64)]
    for i in range(64):
        w[i] = 0.0
        for j in range(64):
            b[i][j] = rng.next() * 0.01
    for _ in range(loop):
        for i in range(1, n):
            w[i] = 0.0100
            for k in range(i):
                w[i] = w[i] + b[k][i] * w[(i - k) - 1]
    return _fsum(w, n)


# ---------------------------------------------------------------------------
# Kernel 7 — equation of state fragment
# ---------------------------------------------------------------------------

_K7_SRC = _C_RANDOM + """
double x[995], y[995], z[995], u[1001];
double q, r, t;

void init(void) {
    int k;
    seed = 77;
    q = rnd(); r = rnd(); t = rnd();
    for (k = 0; k < 995; k++) { x[k] = 0.0; y[k] = rnd(); z[k] = rnd(); }
    for (k = 0; k < 1001; k++) { u[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, k;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (k = 0; k < n; k++) {
            x[k] = u[k] + r * (z[k] + r * y[k])
                 + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1])
                 + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
        }
    }
    for (k = 0; k < n; k++) { s = s + x[k]; }
    return s;
}
"""


def _k7_ref(loop: int, n: int) -> float:
    rng = _LCG(77)
    q, r, t = rng.next(), rng.next(), rng.next()
    x = [0.0] * 995
    y = [0.0] * 995
    z = [0.0] * 995
    for k in range(995):
        x[k] = 0.0
        y[k] = rng.next()
        z[k] = rng.next()
    u = [rng.next() for _ in range(1001)]
    for _ in range(loop):
        for k in range(n):
            x[k] = (
                u[k]
                + r * (z[k] + r * y[k])
                + t
                * (
                    u[k + 3]
                    + r * (u[k + 2] + r * u[k + 1])
                    + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4]))
                )
            )
    return _fsum(x, n)


# ---------------------------------------------------------------------------
# Kernel 8 — ADI integration
# ---------------------------------------------------------------------------

_K8_SRC = _C_RANDOM + """
double u1[2][101][5], u2[2][101][5], u3[2][101][5];
double du1[101], du2[101], du3[101];
double a11, a12, a13, a21, a22, a23, a31, a32, a33, sig;

void init(void) {
    int i, j, k;
    seed = 8;
    a11 = rnd(); a12 = rnd(); a13 = rnd();
    a21 = rnd(); a22 = rnd(); a23 = rnd();
    a31 = rnd(); a32 = rnd(); a33 = rnd();
    sig = rnd();
    for (i = 0; i < 2; i++) {
        for (j = 0; j < 101; j++) {
            for (k = 0; k < 5; k++) {
                u1[i][j][k] = rnd(); u2[i][j][k] = rnd(); u3[i][j][k] = rnd();
            }
        }
    }
}

double kernel(int loop, int n) {
    int l, kx, ky, nl1, nl2;
    double s;
    nl1 = 0;
    nl2 = 1;
    for (l = 0; l < loop; l++) {
        for (kx = 1; kx < 3; kx++) {
            for (ky = 1; ky < n; ky++) {
                du1[ky] = u1[nl1][ky + 1][kx] - u1[nl1][ky - 1][kx];
                du2[ky] = u2[nl1][ky + 1][kx] - u2[nl1][ky - 1][kx];
                du3[ky] = u3[nl1][ky + 1][kx] - u3[nl1][ky - 1][kx];
                u1[nl2][ky][kx] = u1[nl1][ky][kx]
                    + a11 * du1[ky] + a12 * du2[ky] + a13 * du3[ky]
                    + sig * (u1[nl1][ky][kx + 1]
                             - 2.0 * u1[nl1][ky][kx] + u1[nl1][ky][kx - 1]);
                u2[nl2][ky][kx] = u2[nl1][ky][kx]
                    + a21 * du1[ky] + a22 * du2[ky] + a23 * du3[ky]
                    + sig * (u2[nl1][ky][kx + 1]
                             - 2.0 * u2[nl1][ky][kx] + u2[nl1][ky][kx - 1]);
                u3[nl2][ky][kx] = u3[nl1][ky][kx]
                    + a31 * du1[ky] + a32 * du2[ky] + a33 * du3[ky]
                    + sig * (u3[nl1][ky][kx + 1]
                             - 2.0 * u3[nl1][ky][kx] + u3[nl1][ky][kx - 1]);
            }
        }
    }
    s = 0.0;
    for (kx = 0; kx < n; kx++) {
        s = s + u1[1][kx][2] + u2[1][kx][2] + u3[1][kx][2];
    }
    return s;
}
"""


def _k8_ref(loop: int, n: int) -> float:
    rng = _LCG(8)
    a = [rng.next() for _ in range(9)]
    a11, a12, a13, a21, a22, a23, a31, a32, a33 = a
    sig = rng.next()

    def cube():
        return [[[0.0] * 5 for _ in range(101)] for _ in range(2)]

    u1, u2, u3 = cube(), cube(), cube()
    for i in range(2):
        for j in range(101):
            for k in range(5):
                u1[i][j][k] = rng.next()
                u2[i][j][k] = rng.next()
                u3[i][j][k] = rng.next()
    du1 = [0.0] * 101
    du2 = [0.0] * 101
    du3 = [0.0] * 101
    nl1, nl2 = 0, 1
    for _ in range(loop):
        for kx in range(1, 3):
            for ky in range(1, n):
                du1[ky] = u1[nl1][ky + 1][kx] - u1[nl1][ky - 1][kx]
                du2[ky] = u2[nl1][ky + 1][kx] - u2[nl1][ky - 1][kx]
                du3[ky] = u3[nl1][ky + 1][kx] - u3[nl1][ky - 1][kx]
                u1[nl2][ky][kx] = (
                    u1[nl1][ky][kx]
                    + a11 * du1[ky] + a12 * du2[ky] + a13 * du3[ky]
                    + sig * (u1[nl1][ky][kx + 1] - 2.0 * u1[nl1][ky][kx]
                             + u1[nl1][ky][kx - 1])
                )
                u2[nl2][ky][kx] = (
                    u2[nl1][ky][kx]
                    + a21 * du1[ky] + a22 * du2[ky] + a23 * du3[ky]
                    + sig * (u2[nl1][ky][kx + 1] - 2.0 * u2[nl1][ky][kx]
                             + u2[nl1][ky][kx - 1])
                )
                u3[nl2][ky][kx] = (
                    u3[nl1][ky][kx]
                    + a31 * du1[ky] + a32 * du2[ky] + a33 * du3[ky]
                    + sig * (u3[nl1][ky][kx + 1] - 2.0 * u3[nl1][ky][kx]
                             + u3[nl1][ky][kx - 1])
                )
    s = 0.0
    for kx in range(n):
        s = s + u1[1][kx][2] + u2[1][kx][2] + u3[1][kx][2]
    return s


# ---------------------------------------------------------------------------
# Kernel 9 — integrate predictors
# ---------------------------------------------------------------------------

_K9_SRC = _C_RANDOM + """
double px[101][13];
double dm22, dm23, dm24, dm25, dm26, dm27, dm28, c0;

void init(void) {
    int i, j;
    seed = 9;
    dm22 = rnd(); dm23 = rnd(); dm24 = rnd(); dm25 = rnd();
    dm26 = rnd(); dm27 = rnd(); dm28 = rnd(); c0 = rnd();
    for (i = 0; i < 101; i++) {
        for (j = 0; j < 13; j++) { px[i][j] = rnd(); }
    }
}

double kernel(int loop, int n) {
    int l, i;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (i = 0; i < n; i++) {
            px[i][0] = dm28 * px[i][12] + dm27 * px[i][11] + dm26 * px[i][10]
                     + dm25 * px[i][9] + dm24 * px[i][8] + dm23 * px[i][7]
                     + dm22 * px[i][6]
                     + c0 * (px[i][4] + px[i][5]) + px[i][2];
        }
    }
    for (i = 0; i < n; i++) { s = s + px[i][0]; }
    return s;
}
"""


def _k9_ref(loop: int, n: int) -> float:
    rng = _LCG(9)
    dm22, dm23, dm24, dm25 = rng.next(), rng.next(), rng.next(), rng.next()
    dm26, dm27, dm28, c0 = rng.next(), rng.next(), rng.next(), rng.next()
    px = [[rng.next() for _ in range(13)] for _ in range(101)]
    for _ in range(loop):
        for i in range(n):
            px[i][0] = (
                dm28 * px[i][12] + dm27 * px[i][11] + dm26 * px[i][10]
                + dm25 * px[i][9] + dm24 * px[i][8] + dm23 * px[i][7]
                + dm22 * px[i][6]
                + c0 * (px[i][4] + px[i][5]) + px[i][2]
            )
    return _fsum([px[i][0] for i in range(101)], n)


# ---------------------------------------------------------------------------
# Kernel 10 — difference predictors
# ---------------------------------------------------------------------------

_K10_SRC = _C_RANDOM + """
double px[101][13], cx[101][13];

void init(void) {
    int i, j;
    seed = 10;
    for (i = 0; i < 101; i++) {
        for (j = 0; j < 13; j++) { px[i][j] = rnd(); cx[i][j] = rnd(); }
    }
}

double kernel(int loop, int n) {
    int l, i;
    double ar, br, cr, s;
    for (l = 0; l < loop; l++) {
        for (i = 0; i < n; i++) {
            ar = cx[i][4];
            br = ar - px[i][4];
            px[i][4] = ar;
            cr = br - px[i][5];
            px[i][5] = br;
            ar = cr - px[i][6];
            px[i][6] = cr;
            br = ar - px[i][7];
            px[i][7] = ar;
            cr = br - px[i][8];
            px[i][8] = br;
            ar = cr - px[i][9];
            px[i][9] = cr;
            br = ar - px[i][10];
            px[i][10] = ar;
            cr = br - px[i][11];
            px[i][11] = br;
            px[i][13 - 1] = cr - px[i][12];
            px[i][12] = cr;
        }
    }
    s = 0.0;
    for (i = 0; i < n; i++) { s = s + px[i][12]; }
    return s;
}
"""


def _k10_ref(loop: int, n: int) -> float:
    rng = _LCG(10)
    px = [[0.0] * 13 for _ in range(101)]
    cx = [[0.0] * 13 for _ in range(101)]
    for i in range(101):
        for j in range(13):
            px[i][j] = rng.next()
            cx[i][j] = rng.next()
    for _ in range(loop):
        for i in range(n):
            ar = cx[i][4]
            br = ar - px[i][4]
            px[i][4] = ar
            cr = br - px[i][5]
            px[i][5] = br
            ar = cr - px[i][6]
            px[i][6] = cr
            br = ar - px[i][7]
            px[i][7] = ar
            cr = br - px[i][8]
            px[i][8] = br
            ar = cr - px[i][9]
            px[i][9] = cr
            br = ar - px[i][10]
            px[i][10] = ar
            cr = br - px[i][11]
            px[i][11] = br
            # px[i][13-1] aliases px[i][12]: its cr - px[i][12] value is
            # immediately overwritten, so the final value is just cr
            px[i][12] = cr
    s = 0.0
    for i in range(n):
        s = s + px[i][12]
    return s


# ---------------------------------------------------------------------------
# Kernel 11 — first sum
# ---------------------------------------------------------------------------

_K11_SRC = _C_RANDOM + """
double x[1001], y[1001];

void init(void) {
    int k;
    seed = 11;
    for (k = 0; k < 1001; k++) { x[k] = 0.0; y[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, k;
    for (l = 0; l < loop; l++) {
        x[0] = y[0];
        for (k = 1; k < n; k++) { x[k] = x[k - 1] + y[k]; }
    }
    return x[n - 1];
}
"""


def _k11_ref(loop: int, n: int) -> float:
    rng = _LCG(11)
    x = [0.0] * 1001
    y = [0.0] * 1001
    for k in range(1001):
        x[k] = 0.0
        y[k] = rng.next()
    for _ in range(loop):
        x[0] = y[0]
        for k in range(1, n):
            x[k] = x[k - 1] + y[k]
    return x[n - 1]


# ---------------------------------------------------------------------------
# Kernel 12 — first difference
# ---------------------------------------------------------------------------

_K12_SRC = _C_RANDOM + """
double x[1001], y[1002];

void init(void) {
    int k;
    seed = 12;
    for (k = 0; k < 1001; k++) { x[k] = 0.0; }
    for (k = 0; k < 1002; k++) { y[k] = rnd(); }
}

double kernel(int loop, int n) {
    int l, k;
    double s = 0.0;
    for (l = 0; l < loop; l++) {
        for (k = 0; k < n; k++) { x[k] = y[k + 1] - y[k]; }
    }
    for (k = 0; k < n; k++) { s = s + x[k]; }
    return s;
}
"""


def _k12_ref(loop: int, n: int) -> float:
    rng = _LCG(12)
    x = [0.0] * 1001
    y = [rng.next() for _ in range(1002)]
    for _ in range(loop):
        for k in range(n):
            x[k] = y[k + 1] - y[k]
    return _fsum(x, n)


# ---------------------------------------------------------------------------
# Kernel 13 — 2-D particle in cell
# ---------------------------------------------------------------------------

_K13_SRC = _C_RANDOM + """
double p[128][4], b[32][32], c[32][32], y[64], h[32][32];

void init(void) {
    int i, j;
    seed = 13;
    for (i = 0; i < 128; i++) {
        p[i][0] = rnd() * 16.0;
        p[i][1] = rnd() * 16.0;
        p[i][2] = rnd();
        p[i][3] = rnd();
    }
    for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) { b[i][j] = rnd(); c[i][j] = rnd(); h[i][j] = 0.0; }
    }
    for (i = 0; i < 64; i++) { y[i] = rnd(); }
}

double kernel(int loop, int n) {
    int l, ip, i1, j1, i2, j2;
    double s;
    for (l = 0; l < loop; l++) {
        for (ip = 0; ip < n; ip++) {
            i1 = (int)p[ip][0];
            j1 = (int)p[ip][1];
            i1 = i1 & 31;
            j1 = j1 & 31;
            p[ip][2] = p[ip][2] + b[j1][i1];
            p[ip][3] = p[ip][3] + c[j1][i1];
            p[ip][0] = p[ip][0] + p[ip][2];
            p[ip][1] = p[ip][1] + p[ip][3];
            i2 = (int)p[ip][0];
            j2 = (int)p[ip][1];
            i2 = i2 & 31;
            j2 = j2 & 31;
            p[ip][0] = p[ip][0] + y[i2 + 32];
            p[ip][1] = p[ip][1] + y[j2 + 32];
            h[j2][i2] = h[j2][i2] + 1.0;
        }
    }
    s = 0.0;
    for (i1 = 0; i1 < 32; i1++) {
        for (j1 = 0; j1 < 32; j1++) { s = s + h[i1][j1]; }
    }
    for (ip = 0; ip < n; ip++) { s = s + p[ip][0] + p[ip][1]; }
    return s;
}
"""


def _k13_ref(loop: int, n: int) -> float:
    rng = _LCG(13)
    p = [[0.0] * 4 for _ in range(128)]
    for i in range(128):
        p[i][0] = rng.next() * 16.0
        p[i][1] = rng.next() * 16.0
        p[i][2] = rng.next()
        p[i][3] = rng.next()
    b = [[0.0] * 32 for _ in range(32)]
    c = [[0.0] * 32 for _ in range(32)]
    h = [[0.0] * 32 for _ in range(32)]
    for i in range(32):
        for j in range(32):
            b[i][j] = rng.next()
            c[i][j] = rng.next()
            h[i][j] = 0.0
    y = [rng.next() for _ in range(64)]
    for _ in range(loop):
        for ip in range(n):
            i1 = int(p[ip][0]) & 31
            j1 = int(p[ip][1]) & 31
            p[ip][2] += b[j1][i1]
            p[ip][3] += c[j1][i1]
            p[ip][0] += p[ip][2]
            p[ip][1] += p[ip][3]
            i2 = int(p[ip][0]) & 31
            j2 = int(p[ip][1]) & 31
            p[ip][0] += y[i2 + 32]
            p[ip][1] += y[j2 + 32]
            h[j2][i2] += 1.0
    s = 0.0
    for i1 in range(32):
        for j1 in range(32):
            s = s + h[i1][j1]
    for ip in range(n):
        s = s + p[ip][0] + p[ip][1]
    return s


# ---------------------------------------------------------------------------
# Kernel 14 — 1-D particle in cell
# ---------------------------------------------------------------------------

_K14_SRC = _C_RANDOM + """
double vx[1001], xx[1001], xi[1001], ex1[1001], dex1[1001], rx[1001];
double ex[128], dex[128], grd[1001], rh[2050];
int ix[1001], ir[1001];
double flx, qq;

void init(void) {
    int k;
    seed = 14;
    flx = rnd();
    qq = rnd();
    for (k = 0; k < 128; k++) { ex[k] = rnd(); dex[k] = rnd(); }
    for (k = 0; k < 1001; k++) { grd[k] = 1.0 + rnd() * 100.0; }
    for (k = 0; k < 2050; k++) { rh[k] = 0.0; }
}

double kernel(int loop, int n) {
    int l, k;
    double s;
    for (l = 0; l < loop; l++) {
        for (k = 0; k < n; k++) {
            vx[k] = 0.0;
            xx[k] = 0.0;
            ix[k] = (int)grd[k];
            xi[k] = (double)ix[k];
            ex1[k] = ex[ix[k] - 1];
            dex1[k] = dex[ix[k] - 1];
        }
        for (k = 0; k < n; k++) {
            vx[k] = vx[k] + ex1[k] + (xx[k] - xi[k]) * dex1[k];
            xx[k] = xx[k] + vx[k] + flx;
            ir[k] = (int)xx[k];
            rx[k] = xx[k] - (double)ir[k];
            ir[k] = (ir[k] & 2047) + 1;
            xx[k] = rx[k] + (double)ir[k];
        }
        for (k = 0; k < n; k++) {
            rh[ir[k] - 1] = rh[ir[k] - 1] + qq * (1.0 - rx[k]);
            rh[ir[k]] = rh[ir[k]] + qq * rx[k];
        }
    }
    s = 0.0;
    for (k = 0; k < 2050; k++) { s = s + rh[k]; }
    return s;
}
"""


def _k14_ref(loop: int, n: int) -> float:
    rng = _LCG(14)
    flx = rng.next()
    qq = rng.next()
    ex = [0.0] * 128
    dex = [0.0] * 128
    for k in range(128):
        ex[k] = rng.next()
        dex[k] = rng.next()
    grd = [1.0 + rng.next() * 100.0 for _ in range(1001)]
    rh = [0.0] * 2050
    vx = [0.0] * 1001
    xx = [0.0] * 1001
    xi = [0.0] * 1001
    ex1 = [0.0] * 1001
    dex1 = [0.0] * 1001
    rx = [0.0] * 1001
    ix = [0] * 1001
    ir = [0] * 1001
    for _ in range(loop):
        for k in range(n):
            vx[k] = 0.0
            xx[k] = 0.0
            ix[k] = int(grd[k])
            xi[k] = float(ix[k])
            ex1[k] = ex[ix[k] - 1]
            dex1[k] = dex[ix[k] - 1]
        for k in range(n):
            vx[k] = vx[k] + ex1[k] + (xx[k] - xi[k]) * dex1[k]
            xx[k] = xx[k] + vx[k] + flx
            ir[k] = int(xx[k])
            rx[k] = xx[k] - float(ir[k])
            ir[k] = (ir[k] & 2047) + 1
            xx[k] = rx[k] + float(ir[k])
        for k in range(n):
            rh[ir[k] - 1] = rh[ir[k] - 1] + qq * (1.0 - rx[k])
            rh[ir[k]] = rh[ir[k]] + qq * rx[k]
    s = 0.0
    for k in range(2050):
        s = s + rh[k]
    return s


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: appended to every kernel: one simulation entry that initialises the data
#: and runs the timed loop, so a single `simulate(exe, "bench", ...)` call
#: reproduces one Table 4 measurement
_DRIVER = """
double bench(int loop, int n) {
    init();
    return kernel(loop, n);
}
"""

LIVERMORE_KERNELS: list[KernelSpec] = [
    KernelSpec(1, "hydro fragment", _K1_SRC + _DRIVER, (1, 990), _k1_ref),
    KernelSpec(2, "ICCG excerpt", _K2_SRC + _DRIVER, (1, 500), _k2_ref),
    KernelSpec(3, "inner product", _K3_SRC + _DRIVER, (1, 1001), _k3_ref),
    KernelSpec(4, "banded linear equations", _K4_SRC + _DRIVER, (1, 1001), _k4_ref),
    KernelSpec(5, "tri-diagonal elimination", _K5_SRC + _DRIVER, (1, 1001), _k5_ref),
    KernelSpec(6, "linear recurrence", _K6_SRC + _DRIVER, (1, 64), _k6_ref),
    KernelSpec(7, "equation of state", _K7_SRC + _DRIVER, (1, 988), _k7_ref),
    KernelSpec(8, "ADI integration", _K8_SRC + _DRIVER, (1, 100), _k8_ref),
    KernelSpec(9, "integrate predictors", _K9_SRC + _DRIVER, (1, 101), _k9_ref),
    KernelSpec(10, "difference predictors", _K10_SRC + _DRIVER, (1, 101), _k10_ref),
    KernelSpec(11, "first sum", _K11_SRC + _DRIVER, (1, 1001), _k11_ref),
    KernelSpec(12, "first difference", _K12_SRC + _DRIVER, (1, 1000), _k12_ref),
    KernelSpec(13, "2-D particle in cell", _K13_SRC + _DRIVER, (1, 128), _k13_ref),
    KernelSpec(14, "1-D particle in cell", _K14_SRC + _DRIVER, (1, 1001), _k14_ref),
]


def kernel_by_id(kernel_id: int) -> KernelSpec:
    for spec in LIVERMORE_KERNELS:
        if spec.id == kernel_id:
            return spec
    raise KeyError(f"no Livermore kernel {kernel_id}")
